//! The fixed-capacity ITE computed cache.
//!
//! The previous engine memoised ITE results in an unbounded `FxHashMap`,
//! so a long analysis traded ever more memory for hits and the map's
//! growth rehashes sat in the hottest loop of the whole system. This is
//! the classic alternative (CUDD, BuDDy, Sylvan all do a variant):
//! a fixed-size, open-addressed array of `(f, g, h) → r` entries probed
//! at two slots per key. Collisions *overwrite* — an eviction costs at
//! worst one recomputation later, while bounding memory exactly and
//! keeping every probe O(1) with no rehash cliffs.
//!
//! Keys store the raw `Ref` bits of the **normalized** standard triple
//! (first and second arguments regular, see `Bdd::ite`), so the sentinel
//! for an empty slot can be `f == 0` (`Ref::TRUE`'s raw value): terminal
//! first arguments never reach the cache — the trivial cases all resolve
//! before the probe. A zeroed allocation is therefore an empty cache.

use crate::node::Ref;

#[derive(Clone, Copy, Default)]
struct Slot {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

/// Raw `f` value marking an empty slot (`Ref::TRUE`, never a cached key).
const EMPTY: u32 = 0;

/// Default cache size: 2^18 two-way buckets ≈ 262k entries, 4 MiB per
/// manager. Large enough that the fig6–fig9 workloads stay under ~15%
/// eviction traffic; small enough that a per-worker manager costs a few
/// MiB regardless of how long the analysis runs.
pub(crate) const DEFAULT_ITE_CACHE_LOG2: u32 = 18;

pub(crate) struct IteCache {
    /// Power-of-two slot array, allocated lazily on the first insert so
    /// trivial managers (tests build thousands) never pay the memset.
    slots: Box<[Slot]>,
    mask: u32,
    log2: u32,
    occupied: usize,
    lookups: u64,
    hits: u64,
    evictions: u64,
}

#[inline]
pub(crate) fn mix(f: u32, g: u32, h: u32) -> u64 {
    // Each word gets its own odd multiplier before combining, and callers
    // index with the *high* bits of the final product: the low bits of a
    // multiply depend only on equally-low input bits, so a single
    // shift-xor-multiply starves whichever operand lands in the high
    // lanes and triples differing mostly in `h` pile onto the same slots.
    let x = (f as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (g as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (h as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl IteCache {
    pub fn new(log2: u32) -> IteCache {
        assert!((4..=30).contains(&log2), "ite cache size out of range");
        IteCache {
            slots: Box::new([]),
            mask: (1u32 << log2) - 1,
            log2,
            occupied: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// Total slots the cache holds once allocated.
    #[inline]
    pub fn capacity(&self) -> usize {
        1usize << self.log2
    }

    /// The configured size exponent (for building an equally-sized cache).
    #[inline]
    pub fn log2(&self) -> u32 {
        self.log2
    }

    /// Slots currently holding an entry.
    #[inline]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    #[inline]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.evictions)
    }

    /// The two probe positions for a key: a bucket pair sharing one cache
    /// line (slots are 16 bytes; a pair spans 32). Indexed by the high
    /// bits of the mixed key — see [`mix`].
    #[inline]
    fn probes(&self, f: Ref, g: Ref, h: Ref) -> (usize, usize) {
        let i = ((mix(f.0, g.0, h.0) >> (64 - self.log2)) & self.mask as u64) as usize;
        (i, i ^ 1)
    }

    #[inline]
    pub fn lookup(&mut self, f: Ref, g: Ref, h: Ref) -> Option<Ref> {
        self.lookups += 1;
        if self.slots.is_empty() || f.0 == EMPTY {
            // A terminal first argument is indistinguishable from the
            // empty-slot sentinel; it must never match a slot.
            return None;
        }
        let (i, j) = self.probes(f, g, h);
        for k in [i, j] {
            let s = self.slots[k];
            if s.f == f.0 && s.g == g.0 && s.h == h.0 {
                self.hits += 1;
                return Some(Ref(s.r));
            }
        }
        None
    }

    pub fn insert(&mut self, f: Ref, g: Ref, h: Ref, r: Ref) {
        if f.0 == EMPTY {
            // Terminal first arguments resolve before the probe, but a
            // caller that slipped one through would store a key aliasing
            // the empty-slot sentinel: a slot that is occupied yet reads
            // as empty, which later inserts would count a second time
            // until `occupied` crept past capacity. Refuse to cache
            // rather than corrupt the accounting.
            return;
        }
        if self.slots.is_empty() {
            self.slots = vec![Slot::default(); self.capacity()].into_boxed_slice();
        }
        let (i, j) = self.probes(f, g, h);
        // Prefer refreshing an existing entry for the same key, then an
        // empty slot; otherwise overwrite the first probe (direct-mapped
        // eviction).
        let target = if self.slots[i].f == f.0 && self.slots[i].g == g.0 && self.slots[i].h == h.0 {
            i
        } else if self.slots[j].f == f.0 && self.slots[j].g == g.0 && self.slots[j].h == h.0 {
            j
        } else if self.slots[i].f == EMPTY {
            i
        } else if self.slots[j].f == EMPTY {
            j
        } else {
            i
        };
        // Account from the pre-write state of the slot actually written,
        // so one physical slot can never be counted occupied twice:
        // filling an empty slot grows occupancy, replacing another key is
        // an eviction, refreshing the same key is neither.
        let prev = self.slots[target];
        if prev.f == EMPTY {
            self.occupied += 1;
        } else if prev.f != f.0 || prev.g != g.0 || prev.h != h.0 {
            self.evictions += 1;
        }
        debug_assert!(self.occupied <= self.capacity());
        self.slots[target] = Slot {
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
    }

    /// Drop every entry, keeping the allocation and the cumulative
    /// counters.
    pub fn clear(&mut self) {
        self.slots.fill(Slot::default());
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: u32) -> Ref {
        Ref(x)
    }

    #[test]
    fn empty_cache_misses_without_allocating() {
        let mut c = IteCache::new(8);
        assert_eq!(c.lookup(r(2), r(4), r(6)), None);
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.counters(), (1, 0, 0));
        assert!(c.slots.is_empty(), "lookup must not allocate");
    }

    #[test]
    fn insert_then_hit() {
        let mut c = IteCache::new(8);
        c.insert(r(2), r(4), r(6), r(8));
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(8)));
        assert_eq!(c.occupied(), 1);
        let (lookups, hits, evictions) = c.counters();
        assert_eq!((lookups, hits, evictions), (1, 1, 0));
    }

    #[test]
    fn same_key_refreshes_in_place() {
        let mut c = IteCache::new(8);
        c.insert(r(2), r(4), r(6), r(8));
        c.insert(r(2), r(4), r(6), r(10));
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.counters().2, 0, "refresh is not an eviction");
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(10)));
    }

    #[test]
    fn capacity_is_bounded_and_evictions_counted() {
        let mut c = IteCache::new(4); // 16 slots
        for i in 0..400u32 {
            c.insert(r(2 + 2 * i), r(4), r(6), r(8));
        }
        assert!(c.occupied() <= c.capacity());
        let (_, _, evictions) = c.counters();
        assert!(evictions > 0, "overfill must evict");
        // The cache still answers *something* correctly: reinsert and hit.
        c.insert(r(2), r(4), r(6), r(12));
        assert_eq!(c.lookup(r(2), r(4), r(6)), Some(r(12)));
    }

    #[test]
    fn occupancy_never_exceeds_capacity_under_forced_collisions() {
        let mut c = IteCache::new(4); // 16 slots, tiny enough to thrash
        let mut last_evictions = 0;
        for i in 0..2_000u32 {
            // Alternate fresh keys with re-inserts of earlier ones so
            // every slot sees fills, refreshes, and overwrites.
            let key = 2 + 2 * (i % 700);
            c.insert(r(key), r(4), r(6), r(8 + 2 * i));
            assert!(
                c.occupied() <= c.capacity(),
                "occupancy {} exceeded capacity {} after insert {}",
                c.occupied(),
                c.capacity(),
                i
            );
            let (_, _, evictions) = c.counters();
            assert!(evictions >= last_evictions, "eviction counter regressed");
            last_evictions = evictions;
        }
        let (_, _, evictions) = c.counters();
        assert!(evictions > 0, "collision workload must evict");
        // A full round of eviction churn must not inflate occupancy: the
        // slot array is the ground truth.
        let live = c.slots.iter().filter(|s| s.f != EMPTY).count();
        assert_eq!(c.occupied(), live, "occupancy diverged from live slots");
    }

    #[test]
    fn terminal_first_argument_is_never_cached() {
        let mut c = IteCache::new(4);
        // Fill one slot legitimately, then hammer the sentinel-aliasing
        // key: neither occupancy nor counters may drift past capacity.
        c.insert(r(2), r(4), r(6), r(8));
        for i in 0..100u32 {
            c.insert(r(EMPTY), r(4 + 2 * i), r(6), r(8));
        }
        assert_eq!(c.occupied(), 1);
        assert_eq!(c.lookup(r(EMPTY), r(4), r(6)), None);
        assert!(c.occupied() <= c.capacity());
    }

    #[test]
    fn clear_keeps_counters_drops_entries() {
        let mut c = IteCache::new(6);
        c.insert(r(2), r(4), r(6), r(8));
        let _ = c.lookup(r(2), r(4), r(6));
        c.clear();
        assert_eq!(c.occupied(), 0);
        assert_eq!(c.lookup(r(2), r(4), r(6)), None);
        let (lookups, hits, _) = c.counters();
        assert_eq!((lookups, hits), (2, 1));
    }
}
