//! # netbdd — reduced ordered binary decision diagrams for packet sets
//!
//! This crate is the packet-set substrate of the Yardstick reproduction
//! (SIGCOMM 2021, *Test Coverage Metrics for the Network*). The paper's
//! Figure 5 lists the operations coverage computation needs over packet
//! sets — `empty`, `negate`, `union`, `intersect`, `equal`, `fromRule`,
//! `count` — and notes that Yardstick implements them with binary decision
//! diagrams so that very large header spaces can be manipulated
//! efficiently. No sufficiently complete BDD crate was available, so this
//! one is built from scratch.
//!
//! ## Design
//!
//! * **Hash-consed ROBDD with complement edges.** Nodes live in an arena
//!   owned by a [`Bdd`] manager; references carry a complement tag in the
//!   Brace–Rudell–Bryant style, so negation is a bit flip, a function and
//!   its complement share one diagram, and there is a single terminal.
//!   The canonical-form invariant (lo edges regular) plus a unique table
//!   guarantees that equal functions are pointer-equal, which makes
//!   equality, emptiness, and complement-of checks O(1).
//! * **ITE with a bounded computed cache.** All binary operations reduce
//!   to if-then-else; calls normalize to standard triples (argument
//!   ordering + complement rewrites) and are memoised in a fixed-size,
//!   direct-mapped, open-addressed computed table — bounded memory,
//!   no rehash cliffs, evictions counted in [`Stats`].
//! * **Handles are plain `u32` ids** ([`Ref`]); they are `Copy` and carry
//!   no lifetime, so callers can store them in network data structures
//!   freely as long as the owning manager stays alive.
//! * **Two backends, one API.** The default manager owns a private arena
//!   (no synchronisation, the differential oracle). [`Bdd::new_shared`]
//!   builds a Sylvan-style shared arena instead — a lock-striped sharded
//!   unique table plus a seqlock computed cache (see [`shared`]) — whose
//!   [`Bdd::handle`]s parallelize a *single* analysis across threads
//!   while hash-consing still lands canonical refs. [`Bdd::collect`]
//!   adds copying GC with a [`Relocation`] map for long-lived daemons.
//! * **Counting is probability-based.** Packet headers in this project are
//!   ~200 bits, so exact satisfying counts overflow any fixed-width
//!   integer. [`Bdd::probability`] returns the fraction of the full
//!   variable space a function covers; every coverage metric in the paper
//!   is a *ratio* of counts, so fractions are sufficient (and exact
//!   zero/one tests are free because the BDD is canonical). An exact
//!   [`Bdd::sat_count`] is also provided for small domains, used heavily
//!   in tests.
//!
//! ## Quick example
//!
//! ```
//! use netbdd::Bdd;
//!
//! let mut bdd = Bdd::new();
//! // dst port (16 bits) occupies variables 0..16, MSB first.
//! let telnet = bdd.bits_eq(0, 16, 23);
//! let low_ports = bdd.int_range(0, 16, 0, 1023);
//! assert!(bdd.subset(telnet, low_ports)); // telnet ⊆ low ports
//! let frac = bdd.probability(low_ports);
//! assert!((frac - 1024.0 / 65536.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

mod builder;
mod cache;
mod count;
mod cube;
mod debug;
mod fxhash;
mod manager;
mod node;
mod portable;
pub mod shared;

pub use cube::Cube;
pub use debug::{OpCounts, Stats};
pub use manager::Bdd;
pub use node::Ref;
pub use node::Var;
pub use portable::{PortableBdd, PortableBddError, Slot};
pub use shared::{GcStats, Relocation};
