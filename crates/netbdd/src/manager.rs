//! The BDD manager: arena, unique table, ITE engine, and set algebra.

use std::sync::Arc;

use crate::cache::{IteCache, DEFAULT_ITE_CACHE_LOG2};
use crate::fxhash::FxHashMap;
use crate::node::{Node, Ref, Var, TERMINAL_VAR};
use crate::shared::{GcStats, Relocation, SharedState};

/// Entry bound on the probability memo. Like the match-set cache, the
/// policy is full flush at capacity (between queries, never mid-query):
/// entries are one recomputation away, while an unbounded memo on a
/// long-lived manager can outgrow the arena itself.
pub(crate) const PROB_CACHE_CAPACITY: usize = 1 << 18;

/// A reduced, ordered BDD manager with complement edges.
///
/// One manager owns an arena of hash-consed nodes and the memoisation
/// caches for the operations over them. All functions created by a manager
/// are only meaningful together with that manager; mixing [`Ref`]s across
/// managers is a logic error (but is memory-safe — it just denotes the
/// wrong function).
///
/// Nodes are stored in Brace–Rudell–Bryant complement-edge form: a
/// [`Ref`] carries a complement tag, every stored node's lo edge is
/// regular, and there is a single terminal. Negation is a tag flip —
/// O(1), no arena growth, no cache traffic — and a function and its
/// complement share all their nodes, roughly halving node residency on
/// the negation-heavy workloads coverage computation produces
/// (Algorithm 1 is a `diff`/`or` loop).
///
/// Two backends share the `Bdd` API. A **private** manager owns its
/// arena exclusively — no synchronisation anywhere on the hot path, and
/// the backend every differential test treats as the oracle. A
/// **shared** manager ([`Bdd::new_shared`]) is a handle onto a
/// [`SharedState`] arena that any number of sibling handles
/// ([`Bdd::handle`]) use concurrently from other threads; hash-consing
/// still lands canonical [`Ref`]s, so refs cross handles freely.
enum Store {
    Private {
        nodes: Vec<Node>,
        unique: FxHashMap<Node, Ref>,
        ite_cache: IteCache,
    },
    Shared(Arc<SharedState>),
}

/// The manager itself is not shared between threads — parallel sweeps
/// either run one private manager per thread, or one *handle* per thread
/// onto a shared arena ([`Bdd::new_shared`] / [`Bdd::handle`]).
pub struct Bdd {
    store: Store,
    prob_cache: FxHashMap<Ref, f64>,
    prob_evictions: u64,
    /// Reusable memo tables for `restrict`/`exists`, recycled instead of
    /// allocated per call (the per-call maps showed up in the fig9
    /// profile as pure allocator traffic).
    scratch: Vec<FxHashMap<Ref, Ref>>,
    /// Reusable operand buffers for `or_all`/`and_all`, pooled like the
    /// memo tables so the hot fromRule path reduces without allocating.
    reduce_pool: Vec<Vec<Ref>>,
    // Cumulative lookup/hit counters (survive `clear_caches`); a worker
    // thread's hit rates tell whether its shard re-derives shared
    // structure or genuinely explores distinct state. On a shared
    // manager these are per-handle, so each worker reports its own view.
    unique_lookups: u64,
    unique_hits: u64,
    // Per-handle computed-cache traffic for the shared backend (the
    // private backend counts inside its own IteCache).
    shared_ite_lookups: u64,
    shared_ite_hits: u64,
    ops: crate::debug::OpCounts,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Create an empty manager containing only the terminal node.
    pub fn new() -> Self {
        Self::with_ite_cache_log2(DEFAULT_ITE_CACHE_LOG2)
    }

    /// A manager whose ITE computed cache holds `2^log2` slots (the slot
    /// array is allocated lazily, on the first cached operation). Smaller
    /// caches trade recomputation for memory; the default suits the
    /// fig6–fig9 workloads.
    pub fn with_ite_cache_log2(log2: u32) -> Self {
        let terminal = Node {
            // The single terminal (TRUE when referenced regular; FALSE is
            // its complement). Never looked up through the unique table;
            // its fields are inert.
            var: TERMINAL_VAR,
            lo: Ref::TRUE,
            hi: Ref::TRUE,
        };
        Self::from_store(Store::Private {
            nodes: vec![terminal],
            unique: FxHashMap::default(),
            ite_cache: IteCache::new(log2),
        })
    }

    /// Create the owning handle of a **shared** manager: one concurrent
    /// arena (sharded unique table + seqlock computed cache, see
    /// [`crate::shared`]) that sibling handles from [`Bdd::handle`] use
    /// from other threads. Functions built here export byte-identically
    /// to a private manager's — the sequential backend stays the oracle.
    pub fn new_shared() -> Self {
        Self::new_shared_with_ite_cache_log2(DEFAULT_ITE_CACHE_LOG2)
    }

    /// [`Bdd::new_shared`] with an explicit computed-cache size, matching
    /// [`Bdd::with_ite_cache_log2`].
    pub fn new_shared_with_ite_cache_log2(log2: u32) -> Self {
        Self::from_store(Store::Shared(Arc::new(SharedState::new(log2))))
    }

    fn from_store(store: Store) -> Self {
        Bdd {
            store,
            prob_cache: FxHashMap::default(),
            prob_evictions: 0,
            scratch: Vec::new(),
            reduce_pool: Vec::new(),
            unique_lookups: 0,
            unique_hits: 0,
            shared_ite_lookups: 0,
            shared_ite_hits: 0,
            ops: crate::debug::OpCounts::default(),
        }
    }

    /// A fresh handle onto the same shared arena, for use from another
    /// thread. Handles see each other's nodes immediately (hash-consing
    /// is global), while per-handle memos and counters start empty.
    ///
    /// # Panics
    ///
    /// Panics on a private manager — exclusive arenas cannot be shared.
    pub fn handle(&self) -> Bdd {
        match &self.store {
            Store::Shared(s) => Self::from_store(Store::Shared(Arc::clone(s))),
            Store::Private { .. } => panic!("Bdd::handle requires a shared manager"),
        }
    }

    /// Whether this manager is backed by the shared concurrent arena.
    pub fn is_shared(&self) -> bool {
        matches!(self.store, Store::Shared(_))
    }

    /// Number of live nodes in the arena (including the terminal). A
    /// function and its complement share every node, so this is the
    /// engine's true memory residency.
    pub fn node_count(&self) -> usize {
        match &self.store {
            Store::Private { nodes, .. } => nodes.len(),
            Store::Shared(s) => s.node_count(),
        }
    }

    /// Drop all operation caches, keeping the node arena intact.
    ///
    /// Useful between analysis phases on very large networks; every `Ref`
    /// remains valid, and the cumulative hit/eviction counters survive.
    /// On a shared manager the computed cache is global, so this clears
    /// it for every sibling handle too (call at quiescent points).
    pub fn clear_caches(&mut self) {
        match &mut self.store {
            Store::Private { ite_cache, .. } => ite_cache.clear(),
            Store::Shared(s) => s.ite.clear(),
        }
        self.prob_cache.clear();
    }

    /// The stored node under `r` (complement tag ignored — the caller is
    /// responsible for applying `r`'s parity to the children, usually via
    /// [`Bdd::expand`]).
    #[inline]
    pub(crate) fn node(&self, r: Ref) -> Node {
        match &self.store {
            Store::Private { nodes, .. } => nodes[r.index()],
            Store::Shared(s) => s.node(r.index()),
        }
    }

    /// The Shannon children of `r` *as the function `r` denotes*: the
    /// stored node's edges with `r`'s complement tag pushed down. This is
    /// the one place the complement representation is unfolded; every
    /// traversal (counting, cube extraction, export) goes through it.
    #[inline]
    pub(crate) fn expand(&self, r: Ref) -> (Ref, Ref) {
        let n = self.node(r);
        if r.is_complemented() {
            (n.lo.complement(), n.hi.complement())
        } else {
            (n.lo, n.hi)
        }
    }

    /// Variable tested at the root of `r`, or `None` for terminals.
    pub fn root_var(&self, r: Ref) -> Option<Var> {
        if r.is_terminal() {
            None
        } else {
            Some(self.node(r).var)
        }
    }

    /// The reduced, hash-consed constructor ("mk" in the literature).
    ///
    /// Maintains the canonical form: if the lo edge arrives complemented,
    /// the node is stored with both edges flipped and the complement moves
    /// to the returned reference — so every function has exactly one
    /// representation and equality stays a word compare.
    pub(crate) fn mk(&mut self, var: Var, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if lo.is_complemented() {
            let r = self.mk_raw(var, lo.complement(), hi.complement());
            return r.complement();
        }
        self.mk_raw(var, lo, hi)
    }

    fn mk_raw(&mut self, var: Var, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(var < TERMINAL_VAR);
        debug_assert!(!lo.is_complemented(), "lo edges must be regular");
        debug_assert!(lo.is_terminal() || self.node(lo).var > var);
        debug_assert!(hi.is_terminal() || self.node(hi).var > var);
        let node = Node { var, lo, hi };
        self.unique_lookups += 1;
        match &mut self.store {
            Store::Private { nodes, unique, .. } => {
                if let Some(&r) = unique.get(&node) {
                    self.unique_hits += 1;
                    return r;
                }
                let r = Ref::pack(nodes.len(), false);
                nodes.push(node);
                unique.insert(node, r);
                r
            }
            Store::Shared(s) => {
                let (r, hit) = s.mk_raw(node);
                if hit {
                    self.unique_hits += 1;
                }
                r
            }
        }
    }

    /// Probe the computed cache for a normalized standard triple.
    #[inline]
    fn ite_cache_lookup(&mut self, f: Ref, g: Ref, h: Ref) -> Option<Ref> {
        match &mut self.store {
            Store::Private { ite_cache, .. } => ite_cache.lookup(f, g, h),
            Store::Shared(s) => {
                self.shared_ite_lookups += 1;
                let r = s.ite.lookup(f, g, h);
                if r.is_some() {
                    self.shared_ite_hits += 1;
                }
                r
            }
        }
    }

    /// Publish a computed ITE result (best-effort on the shared backend).
    #[inline]
    fn ite_cache_insert(&mut self, f: Ref, g: Ref, h: Ref, r: Ref) {
        match &mut self.store {
            Store::Private { ite_cache, .. } => ite_cache.insert(f, g, h, r),
            Store::Shared(s) => s.ite.insert(f, g, h, r),
        }
    }

    // ----- core operations ------------------------------------------------

    /// The single-variable function `var`.
    pub fn var(&mut self, var: Var) -> Ref {
        self.mk(var, Ref::FALSE, Ref::TRUE)
    }

    /// The negated single-variable function `¬var`.
    pub fn nvar(&mut self, var: Var) -> Ref {
        self.mk(var, Ref::TRUE, Ref::FALSE)
    }

    /// Literal: `var` if `positive`, else `¬var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// Tie-break rank for ITE argument canonicalization: top variable
    /// first (cheapest recursion leads), then arena index, ignoring
    /// complement tags so `f` and `¬f` rank together.
    #[inline]
    fn rank(&self, r: Ref) -> (Var, u32) {
        (self.node(r).var, r.regular().0)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`. The workhorse every other
    /// operation reduces to.
    ///
    /// Before probing the computed cache, the call is normalized to a
    /// **standard triple**: arguments equal or complementary to `f`
    /// collapse to constants, commutative forms pick a canonical argument
    /// order, and complement tags are rewritten so `f` and `g` are always
    /// regular (complementing the result instead). Equivalent calls thus
    /// share one cache entry.
    ///
    /// # Examples
    ///
    /// ```
    /// use netbdd::Bdd;
    ///
    /// let mut bdd = Bdd::new();
    /// let (f, g, h) = (bdd.var(0), bdd.var(1), bdd.var(2));
    /// let ite = bdd.ite(f, g, h);
    ///
    /// // Hash-consing makes the hand-built (f ∧ g) ∨ (¬f ∧ h) the
    /// // *same* canonical node, so equality is a pointer check.
    /// let fg = bdd.and(f, g);
    /// let nf = bdd.not(f);
    /// let nfh = bdd.and(nf, h);
    /// let manual = bdd.or(fg, nfh);
    /// assert!(bdd.equal(ite, manual));
    /// ```
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal and absorption cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        // Arguments equal/complementary to f collapse to constants:
        // within the g branch f holds, within the h branch ¬f does.
        if g == f {
            g = Ref::TRUE;
        } else if g == f.complement() {
            g = Ref::FALSE;
        }
        if h == f {
            h = Ref::FALSE;
        } else if h == f.complement() {
            h = Ref::TRUE;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return f.complement();
        }

        // Canonical argument order for the commutative forms. Each arm
        // has exactly one non-constant pattern left (the constant pairs
        // all returned above), so the ranks below never see a terminal.
        if g.is_true() {
            // f ∨ h == h ∨ f
            if self.rank(h) < self.rank(f) {
                std::mem::swap(&mut f, &mut h);
            }
        } else if h.is_false() {
            // f ∧ g == g ∧ f
            if self.rank(g) < self.rank(f) {
                std::mem::swap(&mut f, &mut g);
            }
        } else if h.is_true() {
            // f → g == ¬g → ¬f
            if self.rank(g) < self.rank(f) {
                let (nf, ng) = (f.complement(), g.complement());
                f = ng;
                g = nf;
            }
        } else if g.is_false() {
            // ¬f ∧ h == ¬h ∧ f  (as ite: (f,0,h) == (¬h,0,¬f))
            if self.rank(h) < self.rank(f) {
                let (nf, nh) = (f.complement(), h.complement());
                f = nh;
                h = nf;
            }
        } else if h == g.complement() {
            // f XNOR g is symmetric: ite(f,g,¬g) == ite(g,f,¬f)
            if self.rank(g) < self.rank(f) {
                std::mem::swap(&mut f, &mut g);
                h = g.complement();
            }
        }

        // Complement normalization: first argument regular...
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // ...then second argument regular, complementing the result.
        let complemented = g.is_complemented();
        if complemented {
            g = g.complement();
            h = h.complement();
        }

        if let Some(r) = self.ite_cache_lookup(f, g, h) {
            return if complemented { r.complement() } else { r };
        }

        let (fv, gv, hv) = (self.top_var(f), self.top_var(g), self.top_var(h));
        let v = fv.min(gv).min(hv);

        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);

        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache_insert(f, g, h, r);
        if complemented {
            r.complement()
        } else {
            r
        }
    }

    #[inline]
    fn top_var(&self, r: Ref) -> Var {
        self.node(r).var
    }

    /// Shannon cofactors of `r` with respect to variable `v` (which must be
    /// no deeper than `r`'s root variable).
    #[inline]
    fn cofactors(&self, r: Ref, v: Var) -> (Ref, Ref) {
        if self.node(r).var == v {
            self.expand(r)
        } else {
            (r, r)
        }
    }

    // ----- derived set algebra (Figure 5 of the paper) ---------------------

    /// The empty packet set.
    pub fn empty(&self) -> Ref {
        Ref::FALSE
    }

    /// The universal packet set.
    pub fn full(&self) -> Ref {
        Ref::TRUE
    }

    /// Set complement (`negate` in the paper's operation table).
    ///
    /// O(1): flips the complement tag. No arena growth, no cache probe —
    /// the former negation cache is gone because there is nothing left to
    /// memoise.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ops.not += 1;
        f.complement()
    }

    /// Set union.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.or += 1;
        self.ite(f, Ref::TRUE, g)
    }

    /// Set intersection.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.and += 1;
        self.ite(f, g, Ref::FALSE)
    }

    /// Set difference `f \ g`.
    ///
    /// Counters are call counts, not exclusive classes: a `diff` also
    /// ticks the `not` and `and` it is built from.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.diff += 1;
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Symmetric difference.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.xor += 1;
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Logical implication `f → g` as a function (not a test).
    pub fn imp(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Union of many sets, combined as a balanced binary tree: operands
    /// meet at O(log n) depth, keeping intermediate diagrams small, where
    /// a linear fold drags one ever-growing accumulator through every
    /// step.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        self.tree_reduce(items, Ref::FALSE, Self::or)
    }

    /// Intersection of many sets (the empty intersection is the full
    /// set), combined as a balanced binary tree like [`Bdd::or_all`].
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        self.tree_reduce(items, Ref::TRUE, Self::and)
    }

    fn tree_reduce<I: IntoIterator<Item = Ref>>(
        &mut self,
        items: I,
        identity: Ref,
        op: fn(&mut Self, Ref, Ref) -> Ref,
    ) -> Ref {
        let mut iter = items.into_iter();
        let Some(first) = iter.next() else {
            return identity;
        };
        let Some(second) = iter.next() else {
            // Single operand: the reduction is the identity map — no
            // buffer, no op, no cache traffic (the hot fromRule path is
            // full of one-action rules that land here).
            return first;
        };
        // Halve in place on one pooled buffer (like the restrict/exists
        // memo pool): each round writes pair results over the front of
        // the same Vec, so a reduction allocates at most once ever.
        let mut layer = self.reduce_pool.pop().unwrap_or_default();
        layer.push(first);
        layer.push(second);
        layer.extend(iter);
        while layer.len() > 1 {
            let mut write = 0;
            let mut read = 0;
            while read + 1 < layer.len() {
                layer[write] = op(self, layer[read], layer[read + 1]);
                write += 1;
                read += 2;
            }
            if read < layer.len() {
                layer[write] = layer[read];
                write += 1;
            }
            layer.truncate(write);
        }
        let result = layer[0];
        layer.clear();
        self.reduce_pool.push(layer);
        result
    }

    /// Set equality. O(1) thanks to canonicity.
    pub fn equal(&self, f: Ref, g: Ref) -> bool {
        f == g
    }

    /// Whether `f ⊆ g` as packet sets.
    pub fn subset(&mut self, f: Ref, g: Ref) -> bool {
        self.diff(f, g).is_false()
    }

    /// Whether the two sets share at least one packet.
    pub fn intersects(&mut self, f: Ref, g: Ref) -> bool {
        !self.and(f, g).is_false()
    }

    // ----- restriction and quantification ----------------------------------

    /// Pull a recycled memo table for a traversal (cleared before reuse
    /// by [`Bdd::put_scratch`]).
    fn take_scratch(&mut self) -> FxHashMap<Ref, Ref> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Return a memo table to the pool, dropping its entries but keeping
    /// the allocation for the next `restrict`/`exists`.
    fn put_scratch(&mut self, mut memo: FxHashMap<Ref, Ref>) {
        memo.clear();
        self.scratch.push(memo);
    }

    /// Restrict variable `var` to the constant `value` in `f`.
    pub fn restrict(&mut self, f: Ref, var: Var, value: bool) -> Ref {
        self.ops.restrict += 1;
        let mut memo = self.take_scratch();
        let r = self.restrict_rec(f, var, value, &mut memo);
        self.put_scratch(memo);
        r
    }

    fn restrict_rec(
        &mut self,
        f: Ref,
        var: Var,
        value: bool,
        memo: &mut FxHashMap<Ref, Ref>,
    ) -> Ref {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f; // var cannot appear below this node
        }
        // Restriction commutes with complement, so the memo is keyed on
        // the regular node and `f`'s tag is reapplied on the way out —
        // half the entries, double the hits.
        let reg = f.regular();
        let apply = |r: Ref| {
            if f.is_complemented() {
                r.complement()
            } else {
                r
            }
        };
        if let Some(&r) = memo.get(&reg) {
            return apply(r);
        }
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value, memo);
            let hi = self.restrict_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(reg, r);
        apply(r)
    }

    /// Existential quantification over a set of variables: `∃ vars. f`.
    ///
    /// `vars` must be sorted ascending (debug-asserted).
    pub fn exists(&mut self, f: Ref, vars: &[Var]) -> Ref {
        self.ops.quantify += 1;
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]));
        let mut memo = self.take_scratch();
        let r = self.exists_rec(f, vars, &mut memo);
        self.put_scratch(memo);
        r
    }

    fn exists_rec(&mut self, f: Ref, vars: &[Var], memo: &mut FxHashMap<Ref, Ref>) -> Ref {
        if f.is_terminal() || vars.is_empty() {
            return f;
        }
        let n = self.node(f);
        // Skip quantified variables above this node's variable.
        let pos = vars.partition_point(|&v| v < n.var);
        let vars = &vars[pos..];
        if vars.is_empty() {
            return f;
        }
        // Quantification does NOT commute with complement (∃v.¬f ≠ ¬∃v.f),
        // so the memo key keeps the tag and children expand with parity.
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (flo, fhi) = self.expand(f);
        let r = if vars[0] == n.var {
            let lo = self.exists_rec(flo, &vars[1..], memo);
            let hi = self.exists_rec(fhi, &vars[1..], memo);
            self.or(lo, hi)
        } else {
            let lo = self.exists_rec(flo, vars, memo);
            let hi = self.exists_rec(fhi, vars, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification over a set of variables: `∀ vars. f`.
    pub fn forall(&mut self, f: Ref, vars: &[Var]) -> Ref {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// The set of variables appearing anywhere in `f`, ascending.
    pub fn support(&self, f: Ref) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.regular()];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        vars.into_iter().collect()
    }

    /// Size (reachable node count) of a single function's diagram,
    /// counting shared arena nodes once: complement tags are ignored, so
    /// `size(f) == size(¬f)` — they are the same nodes.
    pub fn size(&self, f: Ref) -> usize {
        if f.is_terminal() {
            return 1;
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        let mut n = 1usize; // the terminal, reachable from every decision node
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            n += 1;
            let node = self.node(r);
            stack.push(node.lo.regular());
            stack.push(node.hi.regular());
        }
        n
    }

    pub(crate) fn prob_cache(&mut self) -> &mut FxHashMap<Ref, f64> {
        &mut self.prob_cache
    }

    /// Flush the probability memo if it has reached capacity. Called at
    /// the *start* of a probability query — mid-query the iterative
    /// algorithm relies on its partial entries, so one query may
    /// transiently overshoot the bound by its own reachable-set size.
    pub(crate) fn maybe_flush_prob_cache(&mut self) {
        if self.prob_cache.len() >= PROB_CACHE_CAPACITY {
            self.prob_cache.clear();
            self.prob_evictions += 1;
        }
    }

    pub(crate) fn ite_cache_stats(&self) -> (usize, usize, u64, u64, u64) {
        match &self.store {
            Store::Private { ite_cache, .. } => {
                let (lookups, hits, evictions) = ite_cache.counters();
                (
                    ite_cache.occupied(),
                    ite_cache.capacity(),
                    lookups,
                    hits,
                    evictions,
                )
            }
            // Occupancy/evictions are arena-global (approximate under
            // concurrency); lookups/hits are this handle's own traffic.
            Store::Shared(s) => (
                s.ite.occupied(),
                s.ite.capacity(),
                self.shared_ite_lookups,
                self.shared_ite_hits,
                s.ite.evictions(),
            ),
        }
    }

    pub(crate) fn prob_cache_len(&self) -> usize {
        self.prob_cache.len()
    }

    pub(crate) fn prob_evictions(&self) -> u64 {
        self.prob_evictions
    }

    pub(crate) fn unique_counters(&self) -> (u64, u64) {
        (self.unique_lookups, self.unique_hits)
    }

    pub(crate) fn op_counts(&self) -> crate::debug::OpCounts {
        self.ops
    }

    // ----- arena lifecycle (GC) --------------------------------------------

    /// Stop-the-world copying collection: rebuild the arena from `roots`,
    /// dropping every unreachable node, and return the [`Relocation`]
    /// that rewrites surviving `Ref`s plus before/after [`GcStats`].
    ///
    /// Works on both backends (a long-lived private manager compacts the
    /// same way). Every `Ref` not reachable from `roots` — and every
    /// cached result — is invalid afterwards; callers must rewrite all
    /// retained refs through [`Relocation::relocate`] before touching the
    /// manager again. Complement tags on the roots are irrelevant: a
    /// function and its complement are the same nodes.
    ///
    /// # Panics
    ///
    /// On a shared manager, panics unless this is the only live handle
    /// (`collect` moves nodes, which is only sound stop-the-world).
    pub fn collect(&mut self, roots: &[Ref]) -> (Relocation, GcStats) {
        let nodes_before = self.node_count();
        let mut fresh = match &self.store {
            Store::Private { ite_cache, .. } => Self::with_ite_cache_log2(ite_cache.log2()),
            Store::Shared(s) => {
                assert_eq!(
                    Arc::strong_count(s),
                    1,
                    "Bdd::collect requires every sibling handle to be dropped"
                );
                Self::new_shared_with_ite_cache_log2(s.ite_log2())
            }
        };
        // Children-first copy through an explicit stack: Enter schedules
        // the children, Exit re-makes the node in the fresh arena once
        // both relocated children exist. Stored lo edges are regular and
        // `mk` with a regular lo returns a regular ref, so (by induction
        // bottom-up) every relocation target is regular — `relocate` is
        // then a lookup plus the caller's tag.
        enum Walk {
            Enter(Ref),
            Exit(Ref),
        }
        let mut map: FxHashMap<u32, Ref> = FxHashMap::default();
        let mut scheduled: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack: Vec<Walk> = roots
            .iter()
            .filter(|r| !r.is_terminal())
            .map(|r| Walk::Enter(r.regular()))
            .collect();
        let relocate_edge = |map: &FxHashMap<u32, Ref>, e: Ref| -> Ref {
            if e.is_terminal() {
                return e;
            }
            let fresh = map[&e.regular().0];
            if e.is_complemented() {
                fresh.complement()
            } else {
                fresh
            }
        };
        while let Some(step) = stack.pop() {
            match step {
                Walk::Enter(r) => {
                    if !scheduled.insert(r.0) {
                        continue;
                    }
                    stack.push(Walk::Exit(r));
                    let n = self.node(r);
                    if !n.hi.is_terminal() {
                        stack.push(Walk::Enter(n.hi.regular()));
                    }
                    if !n.lo.is_terminal() {
                        stack.push(Walk::Enter(n.lo.regular()));
                    }
                }
                Walk::Exit(r) => {
                    let n = self.node(r);
                    let lo = relocate_edge(&map, n.lo);
                    let hi = relocate_edge(&map, n.hi);
                    let moved = fresh.mk(n.var, lo, hi);
                    map.insert(r.0, moved);
                }
            }
        }
        self.store = fresh.store;
        // Every cached or pooled ref is stale; memos in the scratch/
        // reduce pools are cleared on return, so only the probability
        // memo holds refs across calls.
        self.prob_cache.clear();
        let nodes_after = self.node_count();
        (
            Relocation { map },
            GcStats {
                nodes_before,
                nodes_after,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let bdd = Bdd::new();
        assert!(bdd.empty().is_false());
        assert!(bdd.full().is_true());
        // One shared terminal: FALSE is the complement of TRUE.
        assert_eq!(bdd.node_count(), 1);
    }

    #[test]
    fn mk_eliminates_redundant_tests() {
        let mut bdd = Bdd::new();
        let r = bdd.mk(3, Ref::TRUE, Ref::TRUE);
        assert!(r.is_true());
        assert_eq!(bdd.node_count(), 1);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut bdd = Bdd::new();
        let a = bdd.var(5);
        let b = bdd.var(5);
        assert_eq!(a, b);
        assert_eq!(bdd.node_count(), 2);
    }

    #[test]
    fn literal_and_its_negation_share_one_node() {
        let mut bdd = Bdd::new();
        let a = bdd.var(3);
        let na = bdd.nvar(3);
        assert_eq!(na, bdd.not(a));
        assert_eq!(a.index(), na.index(), "one arena node for both polarities");
        assert_eq!(bdd.node_count(), 2); // terminal + the shared node
    }

    #[test]
    fn not_is_a_tag_flip() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let nodes_before = bdd.node_count();
        let (_, _, lookups_before, _, _) = bdd.ite_cache_stats();
        let nf = bdd.not(f);
        // O(1): no arena growth, no cache probe.
        assert_eq!(bdd.node_count(), nodes_before);
        let (_, _, lookups_after, _, _) = bdd.ite_cache_stats();
        assert_eq!(lookups_after, lookups_before);
        assert_eq!(nf.index(), f.index());
        assert_ne!(nf, f);
        assert_eq!(bdd.not(nf), f);
    }

    #[test]
    fn negation_is_involutive() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let lhs = {
            let ab = bdd.and(a, b);
            bdd.not(ab)
        };
        let rhs = {
            let na = bdd.not(a);
            let nb = bdd.not(b);
            bdd.or(na, nb)
        };
        assert!(bdd.equal(lhs, rhs));
    }

    #[test]
    fn xor_and_diff_agree_with_definitions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        let union = bdd.or(a, b);
        let inter = bdd.and(a, b);
        let alt = bdd.diff(union, inter);
        assert_eq!(x, alt);
    }

    #[test]
    fn subset_and_intersects() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let ab = {
            let b = bdd.var(1);
            bdd.and(a, b)
        };
        assert!(bdd.subset(ab, a));
        assert!(!bdd.subset(a, ab));
        assert!(bdd.intersects(a, ab));
        let na = bdd.not(a);
        assert!(!bdd.intersects(a, na));
    }

    #[test]
    fn restrict_fixes_a_variable() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.ite(a, b, Ref::FALSE); // a ∧ b
        assert_eq!(bdd.restrict(f, 0, true), b);
        assert!(bdd.restrict(f, 0, false).is_false());
        assert_eq!(bdd.restrict(f, 1, true), a);
    }

    #[test]
    fn restrict_commutes_with_complement() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let nf = bdd.not(f);
        for (v, val) in [(0, true), (1, false), (2, true)] {
            let r1 = bdd.restrict(nf, v, val);
            let r2 = {
                let r = bdd.restrict(f, v, val);
                bdd.not(r)
            };
            assert_eq!(r1, r2, "restrict(¬f, {v}, {val}) == ¬restrict(f, ...)");
        }
    }

    #[test]
    fn exists_drops_a_variable() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let e = bdd.exists(f, &[0]);
        assert_eq!(e, b);
        let e2 = bdd.exists(f, &[0, 1]);
        assert!(e2.is_true());
    }

    #[test]
    fn exists_respects_polarity() {
        // ∃ is sensitive to complement: ∃a.(a∧b) = b, but ∃a.¬(a∧b) = ⊤.
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        assert_eq!(bdd.exists(f, &[0]), b);
        assert!(bdd.exists(nf, &[0]).is_true());
    }

    #[test]
    fn forall_is_dual_of_exists() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.or(a, b);
        // ∀a. a∨b  ==  b
        assert_eq!(bdd.forall(f, &[0]), b);
        // ∀a,b. a∨b  ==  false
        assert!(bdd.forall(f, &[0, 1]).is_false());
    }

    #[test]
    fn support_reports_used_variables() {
        let mut bdd = Bdd::new();
        let a = bdd.var(2);
        let b = bdd.var(7);
        let f = bdd.xor(a, b);
        assert_eq!(bdd.support(f), vec![2, 7]);
        assert!(bdd.support(Ref::TRUE).is_empty());
        // Complement shares the diagram, so also the support.
        let nf = bdd.not(f);
        assert_eq!(bdd.support(nf), vec![2, 7]);
    }

    #[test]
    fn size_is_polarity_blind() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        assert_eq!(bdd.size(f), 3); // two decision nodes + terminal
        let nf = bdd.not(f);
        assert_eq!(bdd.size(nf), bdd.size(f));
        assert_eq!(bdd.size(Ref::TRUE), 1);
        assert_eq!(bdd.size(Ref::FALSE), 1);
    }

    #[test]
    fn clear_caches_preserves_functions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        bdd.clear_caches();
        let g = bdd.and(a, b);
        assert_eq!(f, g);
    }

    #[test]
    fn or_all_and_and_all() {
        let mut bdd = Bdd::new();
        let lits: Vec<Ref> = (0..4).map(|v| bdd.var(v)).collect();
        let any = bdd.or_all(lits.iter().copied());
        let all = bdd.and_all(lits.iter().copied());
        assert!(bdd.subset(all, any));
        assert_eq!(bdd.or_all(std::iter::empty()), Ref::FALSE);
        assert_eq!(bdd.and_all(std::iter::empty()), Ref::TRUE);
    }

    #[test]
    fn tree_reduce_equals_linear_fold() {
        // The balanced reduction must produce the same canonical function
        // as the linear fold it replaced, for every operand count
        // (including odd counts, the single operand, and none).
        let mut bdd = Bdd::new();
        let mut items: Vec<Ref> = Vec::new();
        for v in 0..9u32 {
            // A mildly irregular mix: literals, cubes, and negations.
            let lit = bdd.literal(v, v % 2 == 0);
            let other = bdd.var((v + 3) % 9);
            items.push(match v % 3 {
                0 => lit,
                1 => bdd.and(lit, other),
                _ => bdd.not(other),
            });
        }
        for n in 0..=items.len() {
            let slice = &items[..n];
            let linear_or = slice.iter().fold(Ref::FALSE, |acc, &f| bdd.or(acc, f));
            let linear_and = slice.iter().fold(Ref::TRUE, |acc, &f| bdd.and(acc, f));
            assert_eq!(bdd.or_all(slice.iter().copied()), linear_or, "or n={n}");
            assert_eq!(bdd.and_all(slice.iter().copied()), linear_and, "and n={n}");
        }
    }

    #[test]
    fn commutative_operations_share_cache_entries() {
        // Standard-triple normalization: or(a, b) and or(b, a) (likewise
        // and/xor) must land on the same computed-cache entry.
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        for op in [Bdd::or, Bdd::and, Bdd::xor] {
            let r1 = op(&mut bdd, a, b);
            let (_, _, _, hits_before, _) = bdd.ite_cache_stats();
            let r2 = op(&mut bdd, b, a);
            let (_, _, _, hits_after, _) = bdd.ite_cache_stats();
            assert_eq!(r1, r2);
            assert!(hits_after > hits_before, "swapped arguments must hit");
        }
    }

    #[test]
    fn de_morgan_duals_share_cache_entries() {
        // ¬(a ∧ b) and ¬a ∨ ¬b normalize to the same standard triple, so
        // the second derivation is answered from the cache.
        let mut bdd = Bdd::new();
        let a = bdd.var(4);
        let b = bdd.var(9);
        let _ = bdd.and(a, b);
        let (_, _, _, hits_before, _) = bdd.ite_cache_stats();
        let na = bdd.not(a);
        let nb = bdd.not(b);
        let _ = bdd.or(na, nb);
        let (_, _, _, hits_after, _) = bdd.ite_cache_stats();
        assert!(hits_after > hits_before, "dual forms must share entries");
    }

    #[test]
    fn cache_counters_record_hits() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let s1 = bdd.stats();
        let g = bdd.and(a, b); // pure ITE-cache hit
        assert_eq!(f, g);
        let s2 = bdd.stats();
        assert_eq!(s2.ite_hits, s1.ite_hits + 1);
        assert_eq!(s2.ite_lookups, s1.ite_lookups + 1);
        // Remaking an existing node hits the unique table.
        let a2 = bdd.var(0);
        assert_eq!(a, a2);
        let s3 = bdd.stats();
        assert_eq!(s3.unique_hits, s2.unique_hits + 1);
        assert!(s3.unique_hit_rate() > 0.0 && s3.unique_hit_rate() <= 1.0);
        assert!(s3.ite_hit_rate() > 0.0 && s3.ite_hit_rate() <= 1.0);
    }

    #[test]
    fn bounded_ite_cache_evicts_instead_of_growing() {
        // A tiny cache on a workload with far more distinct calls than
        // slots: entries stay bounded, evictions tick, results stay
        // correct (spot-checked against a fresh default manager).
        let mut small = Bdd::with_ite_cache_log2(4); // 16 slots
        let mut reference = Bdd::new();
        let mut acc_s = Ref::FALSE;
        let mut acc_r = Ref::FALSE;
        for v in 0..64u32 {
            let (ls, lr) = (
                small.literal(v, v % 3 != 0),
                reference.literal(v, v % 3 != 0),
            );
            let (cs, cr) = (small.var((v + 7) % 64), reference.var((v + 7) % 64));
            let (xs, xr) = (small.xor(ls, cs), reference.xor(lr, cr));
            acc_s = small.or(acc_s, xs);
            acc_r = reference.or(acc_r, xr);
        }
        let s = small.stats();
        assert!(s.ite_cache_entries <= s.ite_cache_capacity);
        assert_eq!(s.ite_cache_capacity, 16);
        assert!(s.ite_evictions > 0, "overfull cache must evict");
        // Same canonical function in both managers.
        assert_eq!(small.probability(acc_s), reference.probability(acc_r));
        assert_eq!(small.sat_count(acc_s, 64), reference.sat_count(acc_r, 64));
    }

    #[test]
    fn prob_cache_is_capacity_bounded() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let _ = bdd.probability(a);
        assert!(bdd.stats().prob_cache_entries >= 1);
        // Simulate a full memo: the next query flushes before computing.
        for i in 0..PROB_CACHE_CAPACITY {
            bdd.prob_cache().insert(Ref::pack(i + 10_000, false), 0.0);
        }
        let before = bdd.stats().prob_evictions;
        let b = bdd.var(1);
        let _ = bdd.probability(b);
        let s = bdd.stats();
        assert_eq!(s.prob_evictions, before + 1);
        assert!(s.prob_cache_entries < PROB_CACHE_CAPACITY);
    }
}
