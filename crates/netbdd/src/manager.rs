//! The BDD manager: arena, unique table, ITE engine, and set algebra.

use crate::fxhash::FxHashMap;
use crate::node::{Node, Ref, Var, TERMINAL_VAR};

/// A reduced, ordered BDD manager.
///
/// One manager owns an arena of hash-consed nodes and the memoisation
/// caches for the operations over them. All functions created by a manager
/// are only meaningful together with that manager; mixing [`Ref`]s across
/// managers is a logic error (but is memory-safe — it just denotes the
/// wrong function).
///
/// The manager is deliberately not `Sync`: coverage analysis in this
/// project is per-network, and parallel sweeps run one manager per thread.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: FxHashMap<Node, Ref>,
    ite_cache: FxHashMap<(Ref, Ref, Ref), Ref>,
    not_cache: FxHashMap<Ref, Ref>,
    prob_cache: FxHashMap<Ref, f64>,
    // Cumulative lookup/hit counters (survive `clear_caches`); a worker
    // thread's hit rates tell whether its shard re-derives shared
    // structure or genuinely explores distinct state.
    unique_lookups: u64,
    unique_hits: u64,
    ite_lookups: u64,
    ite_hits: u64,
    ops: crate::debug::OpCounts,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Create an empty manager containing only the two terminals.
    pub fn new() -> Self {
        let terminals = vec![
            // Index 0: FALSE, index 1: TRUE. Terminal nodes are never
            // looked up through the unique table; their fields are inert.
            Node {
                var: TERMINAL_VAR,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Ref::TRUE,
                hi: Ref::TRUE,
            },
        ];
        Bdd {
            nodes: terminals,
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            not_cache: FxHashMap::default(),
            prob_cache: FxHashMap::default(),
            unique_lookups: 0,
            unique_hits: 0,
            ite_lookups: 0,
            ite_hits: 0,
            ops: crate::debug::OpCounts::default(),
        }
    }

    /// Number of live nodes in the arena (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Drop all operation caches, keeping the node arena intact.
    ///
    /// Useful between analysis phases on very large networks: the caches
    /// can outgrow the arena itself, and every `Ref` remains valid.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.not_cache.clear();
        self.prob_cache.clear();
    }

    #[inline]
    pub(crate) fn node(&self, r: Ref) -> Node {
        self.nodes[r.index()]
    }

    /// Variable tested at the root of `r`, or `None` for terminals.
    pub fn root_var(&self, r: Ref) -> Option<Var> {
        if r.is_terminal() {
            None
        } else {
            Some(self.nodes[r.index()].var)
        }
    }

    /// The reduced, hash-consed constructor ("mk" in the literature).
    pub(crate) fn mk(&mut self, var: Var, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < TERMINAL_VAR);
        debug_assert!(lo.is_terminal() || self.nodes[lo.index()].var > var);
        debug_assert!(hi.is_terminal() || self.nodes[hi.index()].var > var);
        let node = Node { var, lo, hi };
        self.unique_lookups += 1;
        if let Some(&r) = self.unique.get(&node) {
            self.unique_hits += 1;
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    // ----- core operations ------------------------------------------------

    /// The single-variable function `var`.
    pub fn var(&mut self, var: Var) -> Ref {
        self.mk(var, Ref::FALSE, Ref::TRUE)
    }

    /// The negated single-variable function `¬var`.
    pub fn nvar(&mut self, var: Var) -> Ref {
        self.mk(var, Ref::TRUE, Ref::FALSE)
    }

    /// Literal: `var` if `positive`, else `¬var`.
    pub fn literal(&mut self, var: Var, positive: bool) -> Ref {
        if positive {
            self.var(var)
        } else {
            self.nvar(var)
        }
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`. The workhorse every other
    /// operation reduces to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal and absorption cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }

        let key = (f, g, h);
        self.ite_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&key) {
            self.ite_hits += 1;
            return r;
        }

        let (fv, gv, hv) = (self.top_var(f), self.top_var(g), self.top_var(h));
        let v = fv.min(gv).min(hv);

        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);

        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    #[inline]
    fn top_var(&self, r: Ref) -> Var {
        self.nodes[r.index()].var
    }

    /// Shannon cofactors of `r` with respect to variable `v` (which must be
    /// no deeper than `r`'s root variable).
    #[inline]
    fn cofactors(&self, r: Ref, v: Var) -> (Ref, Ref) {
        let n = self.nodes[r.index()];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    // ----- derived set algebra (Figure 5 of the paper) ---------------------

    /// The empty packet set.
    pub fn empty(&self) -> Ref {
        Ref::FALSE
    }

    /// The universal packet set.
    pub fn full(&self) -> Ref {
        Ref::TRUE
    }

    /// Set complement (`negate` in the paper's operation table).
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ops.not += 1;
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let r = self.ite(f, Ref::FALSE, Ref::TRUE);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// Set union.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.or += 1;
        self.ite(f, Ref::TRUE, g)
    }

    /// Set intersection.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.and += 1;
        self.ite(f, g, Ref::FALSE)
    }

    /// Set difference `f \ g`.
    ///
    /// Counters are call counts, not exclusive classes: a `diff` also
    /// ticks the `not` and `and` it is built from.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.diff += 1;
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Symmetric difference.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ops.xor += 1;
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Logical implication `f → g` as a function (not a test).
    pub fn imp(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Union of many sets, combined as a balanced binary tree: operands
    /// meet at O(log n) depth, keeping intermediate diagrams small, where
    /// a linear fold drags one ever-growing accumulator through every
    /// step.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        self.tree_reduce(items, Ref::FALSE, Self::or)
    }

    /// Intersection of many sets (the empty intersection is the full
    /// set), combined as a balanced binary tree like [`Bdd::or_all`].
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, items: I) -> Ref {
        self.tree_reduce(items, Ref::TRUE, Self::and)
    }

    fn tree_reduce<I: IntoIterator<Item = Ref>>(
        &mut self,
        items: I,
        identity: Ref,
        op: fn(&mut Self, Ref, Ref) -> Ref,
    ) -> Ref {
        let mut layer: Vec<Ref> = items.into_iter().collect();
        if layer.is_empty() {
            return identity;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut pairs = layer.chunks_exact(2);
            for pair in &mut pairs {
                next.push(op(self, pair[0], pair[1]));
            }
            next.extend(pairs.remainder());
            layer = next;
        }
        layer[0]
    }

    /// Set equality. O(1) thanks to canonicity.
    pub fn equal(&self, f: Ref, g: Ref) -> bool {
        f == g
    }

    /// Whether `f ⊆ g` as packet sets.
    pub fn subset(&mut self, f: Ref, g: Ref) -> bool {
        self.diff(f, g).is_false()
    }

    /// Whether the two sets share at least one packet.
    pub fn intersects(&mut self, f: Ref, g: Ref) -> bool {
        !self.and(f, g).is_false()
    }

    // ----- restriction and quantification ----------------------------------

    /// Restrict variable `var` to the constant `value` in `f`.
    pub fn restrict(&mut self, f: Ref, var: Var, value: bool) -> Ref {
        self.ops.restrict += 1;
        let mut memo = FxHashMap::default();
        self.restrict_rec(f, var, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: Ref,
        var: Var,
        value: bool,
        memo: &mut FxHashMap<Ref, Ref>,
    ) -> Ref {
        if f.is_terminal() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f; // var cannot appear below this node
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if value {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, value, memo);
            let hi = self.restrict_rec(n.hi, var, value, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Existential quantification over a set of variables: `∃ vars. f`.
    ///
    /// `vars` must be sorted ascending (debug-asserted).
    pub fn exists(&mut self, f: Ref, vars: &[Var]) -> Ref {
        self.ops.quantify += 1;
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]));
        let mut memo = FxHashMap::default();
        self.exists_rec(f, vars, &mut memo)
    }

    fn exists_rec(&mut self, f: Ref, vars: &[Var], memo: &mut FxHashMap<Ref, Ref>) -> Ref {
        if f.is_terminal() || vars.is_empty() {
            return f;
        }
        let n = self.node(f);
        // Skip quantified variables above this node's variable.
        let pos = vars.partition_point(|&v| v < n.var);
        let vars = &vars[pos..];
        if vars.is_empty() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if vars[0] == n.var {
            let lo = self.exists_rec(n.lo, &vars[1..], memo);
            let hi = self.exists_rec(n.hi, &vars[1..], memo);
            self.or(lo, hi)
        } else {
            let lo = self.exists_rec(n.lo, vars, memo);
            let hi = self.exists_rec(n.hi, vars, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification over a set of variables: `∀ vars. f`.
    pub fn forall(&mut self, f: Ref, vars: &[Var]) -> Ref {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// The set of variables appearing anywhere in `f`, ascending.
    pub fn support(&self, f: Ref) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Size (reachable node count) of a single function's diagram.
    pub fn size(&self, f: Ref) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut n = 0usize;
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            n += 1;
            if !r.is_terminal() {
                let node = self.node(r);
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        n
    }

    pub(crate) fn prob_cache(&mut self) -> &mut FxHashMap<Ref, f64> {
        &mut self.prob_cache
    }

    pub(crate) fn ite_cache_len(&self) -> usize {
        self.ite_cache.len()
    }

    pub(crate) fn not_cache_len(&self) -> usize {
        self.not_cache.len()
    }

    pub(crate) fn prob_cache_len(&self) -> usize {
        self.prob_cache.len()
    }

    pub(crate) fn unique_counters(&self) -> (u64, u64) {
        (self.unique_lookups, self.unique_hits)
    }

    pub(crate) fn ite_counters(&self) -> (u64, u64) {
        (self.ite_lookups, self.ite_hits)
    }

    pub(crate) fn op_counts(&self) -> crate::debug::OpCounts {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_fixed() {
        let bdd = Bdd::new();
        assert!(bdd.empty().is_false());
        assert!(bdd.full().is_true());
        assert_eq!(bdd.node_count(), 2);
    }

    #[test]
    fn mk_eliminates_redundant_tests() {
        let mut bdd = Bdd::new();
        let r = bdd.mk(3, Ref::TRUE, Ref::TRUE);
        assert!(r.is_true());
        assert_eq!(bdd.node_count(), 2);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut bdd = Bdd::new();
        let a = bdd.var(5);
        let b = bdd.var(5);
        assert_eq!(a, b);
        assert_eq!(bdd.node_count(), 3);
    }

    #[test]
    fn negation_is_involutive() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn de_morgan() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let lhs = {
            let ab = bdd.and(a, b);
            bdd.not(ab)
        };
        let rhs = {
            let na = bdd.not(a);
            let nb = bdd.not(b);
            bdd.or(na, nb)
        };
        assert!(bdd.equal(lhs, rhs));
    }

    #[test]
    fn xor_and_diff_agree_with_definitions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        let union = bdd.or(a, b);
        let inter = bdd.and(a, b);
        let alt = bdd.diff(union, inter);
        assert_eq!(x, alt);
    }

    #[test]
    fn subset_and_intersects() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let ab = {
            let b = bdd.var(1);
            bdd.and(a, b)
        };
        assert!(bdd.subset(ab, a));
        assert!(!bdd.subset(a, ab));
        assert!(bdd.intersects(a, ab));
        let na = bdd.not(a);
        assert!(!bdd.intersects(a, na));
    }

    #[test]
    fn restrict_fixes_a_variable() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.ite(a, b, Ref::FALSE); // a ∧ b
        assert_eq!(bdd.restrict(f, 0, true), b);
        assert!(bdd.restrict(f, 0, false).is_false());
        assert_eq!(bdd.restrict(f, 1, true), a);
    }

    #[test]
    fn exists_drops_a_variable() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let e = bdd.exists(f, &[0]);
        assert_eq!(e, b);
        let e2 = bdd.exists(f, &[0, 1]);
        assert!(e2.is_true());
    }

    #[test]
    fn forall_is_dual_of_exists() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.or(a, b);
        // ∀a. a∨b  ==  b
        assert_eq!(bdd.forall(f, &[0]), b);
        // ∀a,b. a∨b  ==  false
        assert!(bdd.forall(f, &[0, 1]).is_false());
    }

    #[test]
    fn support_reports_used_variables() {
        let mut bdd = Bdd::new();
        let a = bdd.var(2);
        let b = bdd.var(7);
        let f = bdd.xor(a, b);
        assert_eq!(bdd.support(f), vec![2, 7]);
        assert!(bdd.support(Ref::TRUE).is_empty());
    }

    #[test]
    fn clear_caches_preserves_functions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        bdd.clear_caches();
        let g = bdd.and(a, b);
        assert_eq!(f, g);
    }

    #[test]
    fn or_all_and_and_all() {
        let mut bdd = Bdd::new();
        let lits: Vec<Ref> = (0..4).map(|v| bdd.var(v)).collect();
        let any = bdd.or_all(lits.iter().copied());
        let all = bdd.and_all(lits.iter().copied());
        assert!(bdd.subset(all, any));
        assert_eq!(bdd.or_all(std::iter::empty()), Ref::FALSE);
        assert_eq!(bdd.and_all(std::iter::empty()), Ref::TRUE);
    }

    #[test]
    fn tree_reduce_equals_linear_fold() {
        // The balanced reduction must produce the same canonical function
        // as the linear fold it replaced, for every operand count
        // (including odd counts, the single operand, and none).
        let mut bdd = Bdd::new();
        let mut items: Vec<Ref> = Vec::new();
        for v in 0..9u32 {
            // A mildly irregular mix: literals, cubes, and negations.
            let lit = bdd.literal(v, v % 2 == 0);
            let other = bdd.var((v + 3) % 9);
            items.push(match v % 3 {
                0 => lit,
                1 => bdd.and(lit, other),
                _ => bdd.not(other),
            });
        }
        for n in 0..=items.len() {
            let slice = &items[..n];
            let linear_or = slice.iter().fold(Ref::FALSE, |acc, &f| bdd.or(acc, f));
            let linear_and = slice.iter().fold(Ref::TRUE, |acc, &f| bdd.and(acc, f));
            assert_eq!(bdd.or_all(slice.iter().copied()), linear_or, "or n={n}");
            assert_eq!(bdd.and_all(slice.iter().copied()), linear_and, "and n={n}");
        }
    }

    #[test]
    fn cache_counters_record_hits() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let s1 = bdd.stats();
        let g = bdd.and(a, b); // pure ITE-cache hit
        assert_eq!(f, g);
        let s2 = bdd.stats();
        assert_eq!(s2.ite_hits, s1.ite_hits + 1);
        assert_eq!(s2.ite_lookups, s1.ite_lookups + 1);
        // Remaking an existing node hits the unique table.
        let a2 = bdd.var(0);
        assert_eq!(a, a2);
        let s3 = bdd.stats();
        assert_eq!(s3.unique_hits, s2.unique_hits + 1);
        assert!(s3.unique_hit_rate() > 0.0 && s3.unique_hit_rate() <= 1.0);
        assert!(s3.ite_hit_rate() > 0.0 && s3.ite_hit_rate() <= 1.0);
    }
}
