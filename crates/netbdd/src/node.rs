//! Node arena primitives: references and the node record.

/// A handle to a BDD function, valid for the lifetime of the [`crate::Bdd`]
/// manager that created it.
///
/// `Ref` is a plain index; it is `Copy` and 4 bytes so that forwarding
/// tables can embed one per rule without indirection. Because the manager
/// hash-conses nodes, two `Ref`s are equal **iff** they denote the same
/// boolean function, which makes set equality and emptiness checks O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-false function (the empty packet set).
    pub const FALSE: Ref = Ref(0);
    /// The constant-true function (the full packet set).
    pub const TRUE: Ref = Ref(1);

    /// Whether this reference is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Whether this is the constant-false (empty set) function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Ref::FALSE
    }

    /// Whether this is the constant-true (universal set) function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Ref::TRUE
    }

    /// The raw arena index. Exposed for diagnostics and hashing only.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            Ref(i) => write!(f, "n{i}"),
        }
    }
}

/// Variable index type. Variables are ordered by their index: smaller
/// indices are closer to the root of every diagram.
pub type Var = u32;

/// Sentinel variable index used by terminal nodes so that terminals sort
/// below every decision node during apply-style recursions.
pub(crate) const TERMINAL_VAR: Var = Var::MAX;

/// One decision node: `if var then hi else lo`.
///
/// Reduction invariants maintained by the manager:
/// * `lo != hi` (no redundant tests), and
/// * `(var, lo, hi)` is unique in the arena (hash-consing).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub lo: Ref,
    pub hi: Ref,
}
