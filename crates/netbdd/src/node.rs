//! Node arena primitives: complement-tagged references and the node record.

/// A handle to a BDD function, valid for the lifetime of the [`crate::Bdd`]
/// manager that created it.
///
/// `Ref` is a tagged index in the Brace–Rudell–Bryant style: bit 0 is a
/// **complement tag** and the remaining bits are the arena index of a
/// decision node. A set tag means "the negation of the node's function",
/// so complementing a set is a bit flip — no arena traffic, no cache
/// probe. It is `Copy` and 4 bytes so that forwarding tables can embed one
/// per rule without indirection.
///
/// The manager keeps every stored node's **lo edge regular** (untagged)
/// and hash-conses the `(var, lo, hi)` triples, which together make the
/// representation canonical: two `Ref`s are equal **iff** they denote the
/// same boolean function, and `f == !g` is likewise a single compare. Set
/// equality, emptiness, and complement-of checks are all O(1).
///
/// There is a single terminal node (arena index 0) denoting the constant
/// TRUE; FALSE is its complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-true function (the full packet set): the untagged
    /// terminal.
    pub const TRUE: Ref = Ref(0);
    /// The constant-false function (the empty packet set): the
    /// complemented terminal.
    pub const FALSE: Ref = Ref(1);

    /// Whether this reference points at the terminal node (either
    /// polarity).
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Whether this is the constant-false (empty set) function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Ref::FALSE
    }

    /// Whether this is the constant-true (universal set) function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Ref::TRUE
    }

    /// Whether the complement tag is set. Representation detail: the
    /// *function* a complemented `Ref` denotes is the negation of its
    /// node's function. Exposed for diagnostics (`dot`, stats).
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same node with the complement tag flipped: O(1) negation.
    #[inline]
    pub(crate) fn complement(self) -> Ref {
        Ref(self.0 ^ 1)
    }

    /// The untagged (regular) version of this reference.
    #[inline]
    pub(crate) fn regular(self) -> Ref {
        Ref(self.0 & !1)
    }

    /// The arena index of the underlying node (complement tag stripped).
    /// Exposed for diagnostics and hashing only.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Assemble a reference from an arena index and a complement tag.
    #[inline]
    pub(crate) fn pack(index: usize, complemented: bool) -> Ref {
        Ref(((index as u32) << 1) | complemented as u32)
    }
}

impl std::fmt::Debug for Ref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Ref::FALSE => write!(f, "⊥"),
            Ref::TRUE => write!(f, "⊤"),
            r if r.is_complemented() => write!(f, "!n{}", r.index()),
            r => write!(f, "n{}", r.index()),
        }
    }
}

/// Variable index type. Variables are ordered by their index: smaller
/// indices are closer to the root of every diagram.
pub type Var = u32;

/// Sentinel variable index used by the terminal node so that it sorts
/// below every decision node during apply-style recursions.
pub(crate) const TERMINAL_VAR: Var = Var::MAX;

/// One decision node: `if var then hi else lo`.
///
/// Canonical-form invariants maintained by the manager:
/// * `lo != hi` (no redundant tests),
/// * `lo` is **regular** — a complemented else-edge is rewritten as the
///   complement of the node with both edges flipped, so each function and
///   its negation share one arena node, and
/// * `(var, lo, hi)` is unique in the arena (hash-consing).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub lo: Ref,
    pub hi: Ref,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_polarity() {
        assert!(Ref::TRUE.is_terminal() && Ref::FALSE.is_terminal());
        assert_eq!(Ref::TRUE.complement(), Ref::FALSE);
        assert_eq!(Ref::FALSE.complement(), Ref::TRUE);
        assert!(!Ref::TRUE.is_complemented());
        assert!(Ref::FALSE.is_complemented());
        assert_eq!(Ref::TRUE.index(), 0);
        assert_eq!(Ref::FALSE.index(), 0);
    }

    #[test]
    fn pack_roundtrips() {
        for idx in [0usize, 1, 7, 123_456] {
            for c in [false, true] {
                let r = Ref::pack(idx, c);
                assert_eq!(r.index(), idx);
                assert_eq!(r.is_complemented(), c);
                assert_eq!(r.complement().index(), idx);
                assert_eq!(r.regular(), Ref::pack(idx, false));
            }
        }
    }

    #[test]
    fn debug_shows_polarity() {
        assert_eq!(format!("{:?}", Ref::TRUE), "⊤");
        assert_eq!(format!("{:?}", Ref::FALSE), "⊥");
        assert_eq!(format!("{:?}", Ref::pack(3, false)), "n3");
        assert_eq!(format!("{:?}", Ref::pack(3, true)), "!n3");
    }
}
