//! The shared-manager concurrent backend and arena lifecycle management.
//!
//! The per-thread story (`ParallelRunner` spawning one private [`Bdd`](crate::Bdd)
//! per worker and merging by `PortableBdd` export) parallelizes *across*
//! analyses but never *inside* one: a single large ITE is stuck on one
//! core, and merged results pay an export/import round-trip. This module
//! is the Sylvan-style alternative: **one** arena shared by every worker,
//! so hash-consing lands canonical [`Ref`]s no matter which thread built
//! a node, results cross threads as plain `Ref`s, and the computed cache
//! is shared work, not per-thread duplication.
//!
//! ## Sharded unique table
//!
//! The arena is split into `NUM_SHARDS` (64) shards selected by the *high*
//! bits of the node's hash (the low bits of the in-shard hash map would
//! otherwise correlate with shard choice). Each shard owns
//!
//! * a lock-striped unique table (`Mutex<FxHashMap<Node, local>>`) — the
//!   insert path takes exactly one shard lock, so threads building
//!   disjoint structure almost never contend;
//! * an append-only chunked node store readable **without** the lock:
//!   a spine of doubling-sized chunks whose slots are `OnceLock<Node>`,
//!   so a published node is immutable and `node(r)` is a wait-free read.
//!
//! A global arena index interleaves shards in the *low* bits —
//! `index = local << SHARD_BITS | shard` — which keeps index 0 (shard 0,
//! local 0) reserved for the terminal, preserving `Ref::TRUE == Ref(0)`
//! and the entire complement-edge encoding unchanged. `PortableBdd`
//! export is structure-only, so functions built in a shared arena export
//! **byte-identically** to the sequential manager — that property is the
//! differential CI gate for this backend.
//!
//! ## Shared computed cache
//!
//! The ITE cache is the same fixed-capacity two-probe design as the
//! sequential `IteCache`, made concurrent with a
//! per-slot seqlock: writers CAS the version odd, store the payload,
//! and release it even; readers accept a payload only if the version was
//! even and unchanged around the reads. Lost inserts and skipped slots
//! are fine — the cache is memoisation, never ground truth.
//!
//! ## Arena lifecycle (GC)
//!
//! Long-lived daemons accrete garbage: every delta recomputes covered
//! sets, and the dead intermediates stay in the arena forever. The
//! collector ([`Bdd::collect`](crate::Bdd::collect)) is a stop-the-world copying pass — from
//! the registered roots it rebuilds a fresh same-mode store children
//! first, then hands back a [`Relocation`] mapping old regular refs to
//! new ones so owners of `Ref`s (match sets, covered sets, traces)
//! rewrite themselves in O(refs). Everything unreachable is simply never
//! copied, and the computed caches start empty in the new store.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::cache::mix;
use crate::fxhash::{FxBuildHasher, FxHashMap};
use crate::node::{Node, Ref, TERMINAL_VAR};

/// Shard-count exponent: the arena is split `2^SHARD_BITS` ways.
pub(crate) const SHARD_BITS: u32 = 6;

/// Number of unique-table shards in a shared arena. 64 striped locks is
/// far past the worker counts this project runs (≤ 16), so two workers
/// rarely insert into the same shard at once.
pub(crate) const NUM_SHARDS: usize = 1 << SHARD_BITS;

/// log2 of the first chunk's slot count; chunk `k` holds `BASE << k`
/// nodes, so 16 chunks cover `BASE * (2^16 - 1)` ≈ 67M nodes per shard.
const CHUNK_BASE_LOG2: u32 = 10;

/// Number of chunks in a shard's spine.
const NUM_CHUNKS: usize = 16;

/// Largest local index a shard may hold: the global index
/// `local << SHARD_BITS | shard` must still fit in a [`Ref`]'s 31
/// index bits.
const MAX_LOCAL: u32 = 1 << (31 - SHARD_BITS);

/// Chunk and offset for a local index. Chunk `k` covers locals
/// `[BASE*(2^k - 1), BASE*(2^(k+1) - 1))`, so `k` is the bit length of
/// `local/BASE + 1` minus one.
#[inline]
fn locate(local: u32) -> (usize, usize) {
    let n = (local >> CHUNK_BASE_LOG2) + 1;
    let k = 31 - n.leading_zeros();
    let offset = local - (((1u32 << k) - 1) << CHUNK_BASE_LOG2);
    (k as usize, offset as usize)
}

/// Append-only node storage readable without the shard lock. Chunks are
/// allocated on first touch and never move; each slot is written exactly
/// once (under the shard lock) and `OnceLock` publication makes the
/// write visible to any thread that learned the index through a
/// synchronising edge (shard mutex, seqlock version, or thread join).
struct Chunked {
    chunks: [OnceLock<Box<[OnceLock<Node>]>>; NUM_CHUNKS],
}

impl Chunked {
    fn new() -> Chunked {
        Chunked {
            chunks: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    #[inline]
    fn get(&self, local: u32) -> Node {
        let (k, off) = locate(local);
        let chunk = self.chunks[k].get().expect("chunk of published node");
        *chunk[off].get().expect("published node slot")
    }

    /// Store a node at `local`. Caller must hold the shard lock and use
    /// each local index exactly once.
    fn set(&self, local: u32, node: Node) {
        let (k, off) = locate(local);
        let chunk = self.chunks[k].get_or_init(|| {
            let size = (1usize << CHUNK_BASE_LOG2) << k;
            (0..size).map(|_| OnceLock::new()).collect()
        });
        let fresh = chunk[off].set(node).is_ok();
        debug_assert!(fresh, "node slot written twice");
    }
}

/// One lock stripe of the shared unique table.
struct Shard {
    /// `Node → local index`, guarding the insert path.
    unique: Mutex<FxHashMap<Node, u32>>,
    /// Published node count; written under the lock, read lock-free by
    /// [`SharedState::node_count`] and the GC watermark check.
    len: AtomicU32,
    nodes: Chunked,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            unique: Mutex::new(FxHashMap::default()),
            len: AtomicU32::new(0),
            nodes: Chunked::new(),
        }
    }
}

/// A seqlock slot of the shared computed cache: `w0 = f | g << 32`,
/// `w1 = h | r << 32`, valid only while `ver` is even and stable.
struct CacheSlot {
    ver: AtomicU32,
    w0: AtomicU64,
    w1: AtomicU64,
}

/// The concurrent ITE computed cache: same geometry, key normalization,
/// and empty-slot sentinel (`f == 0`, never a cached first argument) as
/// the sequential [`IteCache`](crate::cache), with per-slot seqlocks
/// instead of exclusive access. Inserts are best-effort: a writer that
/// loses the version CAS skips the slot rather than wait.
pub(crate) struct SharedIteCache {
    /// Lazily allocated like the sequential cache, so cheap managers
    /// never pay the ~6 MiB memset.
    slots: OnceLock<Box<[CacheSlot]>>,
    log2: u32,
    /// Approximate global accounting (relaxed): slot fills and
    /// cross-key overwrites observed by writers.
    occupied: AtomicU64,
    evictions: AtomicU64,
}

impl SharedIteCache {
    fn new(log2: u32) -> SharedIteCache {
        assert!((4..=30).contains(&log2), "ite cache size out of range");
        SharedIteCache {
            slots: OnceLock::new(),
            log2,
            occupied: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        1usize << self.log2
    }

    pub(crate) fn occupied(&self) -> usize {
        self.occupied.load(Ordering::Relaxed) as usize
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    #[inline]
    fn probe(&self, f: Ref, g: Ref, h: Ref) -> usize {
        (mix(f.0, g.0, h.0) >> (64 - self.log2)) as usize
    }

    pub(crate) fn lookup(&self, f: Ref, g: Ref, h: Ref) -> Option<Ref> {
        let slots = self.slots.get()?;
        if f.0 == 0 {
            // Terminal first argument aliases the empty sentinel.
            return None;
        }
        let i = self.probe(f, g, h);
        for idx in [i, i ^ 1] {
            let s = &slots[idx];
            let v1 = s.ver.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                continue; // mid-write
            }
            let w0 = s.w0.load(Ordering::Relaxed);
            let w1 = s.w1.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if s.ver.load(Ordering::Relaxed) != v1 {
                continue; // torn read
            }
            if w0 == key_w0(f, g) && (w1 as u32) == h.0 {
                return Some(Ref((w1 >> 32) as u32));
            }
        }
        None
    }

    pub(crate) fn insert(&self, f: Ref, g: Ref, h: Ref, r: Ref) {
        if f.0 == 0 {
            return; // never cache the sentinel-aliasing key
        }
        let slots = self.slots.get_or_init(|| {
            (0..self.capacity())
                .map(|_| CacheSlot {
                    ver: AtomicU32::new(0),
                    w0: AtomicU64::new(0),
                    w1: AtomicU64::new(0),
                })
                .collect()
        });
        let i = self.probe(f, g, h);
        let k0 = key_w0(f, g);
        // Mirror the sequential slot preference — same key, then empty,
        // then the first probe — from a relaxed peek; races only cost an
        // extra eviction, never correctness.
        let (p0, p1) = (
            slots[i].w0.load(Ordering::Relaxed),
            slots[i ^ 1].w0.load(Ordering::Relaxed),
        );
        let first = if p0 == k0 || (p1 != k0 && (p0 == 0 || p1 != 0)) {
            i
        } else {
            i ^ 1
        };
        for idx in [first, first ^ 1] {
            let s = &slots[idx];
            let v = s.ver.load(Ordering::Relaxed);
            if v & 1 == 1 {
                continue; // another writer owns the slot
            }
            if s.ver
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let old0 = s.w0.load(Ordering::Relaxed);
            let old_h = s.w1.load(Ordering::Relaxed) as u32;
            s.w0.store(k0, Ordering::Relaxed);
            s.w1.store(h.0 as u64 | ((r.0 as u64) << 32), Ordering::Relaxed);
            s.ver.store(v + 2, Ordering::Release);
            if old0 == 0 {
                self.occupied.fetch_add(1, Ordering::Relaxed);
            } else if old0 != k0 || old_h != h.0 {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        // Both slots contended: drop the insert, it is only a memo.
    }

    /// Best-effort concurrent clear: empties every slot not mid-write,
    /// keeping the allocation. Intended for quiescent points (between
    /// analysis phases); concurrent readers stay correct throughout.
    pub(crate) fn clear(&self) {
        if let Some(slots) = self.slots.get() {
            for s in slots.iter() {
                let v = s.ver.load(Ordering::Relaxed);
                if v & 1 == 1 {
                    continue;
                }
                if s.ver
                    .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                s.w0.store(0, Ordering::Relaxed);
                s.w1.store(0, Ordering::Relaxed);
                s.ver.store(v + 2, Ordering::Release);
            }
        }
        self.occupied.store(0, Ordering::Relaxed);
    }
}

#[inline]
fn key_w0(f: Ref, g: Ref) -> u64 {
    f.0 as u64 | ((g.0 as u64) << 32)
}

/// The state behind every handle of one shared manager: the sharded
/// unique table plus the concurrent computed cache. Held in an `Arc`;
/// [`Bdd::handle`](crate::Bdd::handle) clones the `Arc` into a fresh
/// handle whose per-handle caches and counters start empty.
pub(crate) struct SharedState {
    shards: Vec<Shard>,
    pub(crate) ite: SharedIteCache,
    hasher: FxBuildHasher,
}

impl SharedState {
    pub(crate) fn new(ite_log2: u32) -> SharedState {
        let state = SharedState {
            shards: (0..NUM_SHARDS).map(|_| Shard::new()).collect(),
            ite: SharedIteCache::new(ite_log2),
            hasher: FxBuildHasher::default(),
        };
        // Reserve global index 0 — shard 0, local 0 — for the single
        // terminal, exactly as the private arena does, so Ref::TRUE is
        // Ref(0) in both backends. Never entered in a unique table.
        let terminal = Node {
            var: TERMINAL_VAR,
            lo: Ref::TRUE,
            hi: Ref::TRUE,
        };
        state.shards[0].nodes.set(0, terminal);
        state.shards[0].len.store(1, Ordering::Release);
        state
    }

    pub(crate) fn ite_log2(&self) -> u32 {
        self.ite.log2
    }

    /// The stored node at a global arena index (wait-free).
    #[inline]
    pub(crate) fn node(&self, index: usize) -> Node {
        let shard = index & (NUM_SHARDS - 1);
        let local = (index >> SHARD_BITS) as u32;
        self.shards[shard].nodes.get(local)
    }

    /// Total published nodes across all shards (exact at quiescence,
    /// a consistent lower bound while workers are inserting).
    pub(crate) fn node_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Acquire) as usize)
            .sum()
    }

    /// Hash-consed insert: one shard lock, compare-exchange semantics on
    /// the canonical slot (first inserter wins, later callers get the
    /// same `Ref`). Returns the canonical regular ref and whether the
    /// node already existed.
    pub(crate) fn mk_raw(&self, node: Node) -> (Ref, bool) {
        use std::hash::BuildHasher;
        let shard_id = (self.hasher.hash_one(node) >> (64 - SHARD_BITS)) as usize;
        let shard = &self.shards[shard_id];
        let mut unique = shard.unique.lock().expect("shard lock poisoned");
        if let Some(&local) = unique.get(&node) {
            return (Ref::pack(global_index(local, shard_id), false), true);
        }
        let local = shard.len.load(Ordering::Relaxed);
        assert!(local < MAX_LOCAL, "shared arena shard overflow");
        shard.nodes.set(local, node);
        shard.len.store(local + 1, Ordering::Release);
        unique.insert(node, local);
        (Ref::pack(global_index(local, shard_id), false), false)
    }
}

#[inline]
fn global_index(local: u32, shard: usize) -> usize {
    ((local as usize) << SHARD_BITS) | shard
}

/// The old-ref → new-ref map produced by a collection
/// ([`Bdd::collect`](crate::Bdd::collect)). Keyed on *regular* refs;
/// [`Relocation::relocate`] reapplies the complement tag, so both
/// polarities of a function relocate through one entry.
pub struct Relocation {
    /// Old regular raw ref → new (always regular) ref. Regularity of the
    /// values is an invariant of the copying pass: stored `lo` edges are
    /// regular, and `mk` with a regular `lo` returns a regular ref.
    pub(crate) map: FxHashMap<u32, Ref>,
}

impl Relocation {
    /// The post-GC ref denoting the same function as pre-GC `r`.
    ///
    /// `r` must be a terminal or reachable from the root set the
    /// collection ran with; anything else was reclaimed and panics.
    pub fn relocate(&self, r: Ref) -> Ref {
        if r.is_terminal() {
            return r;
        }
        let fresh = *self
            .map
            .get(&r.regular().0)
            .expect("ref not reachable from the GC root set");
        if r.is_complemented() {
            fresh.complement()
        } else {
            fresh
        }
    }

    /// Number of relocated (live) decision nodes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the root set reached no decision nodes at all.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Before/after accounting for one collection, suitable for gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcStats {
    /// Arena node count when the collection started.
    pub nodes_before: usize,
    /// Arena node count after compaction (live nodes + terminal).
    pub nodes_after: usize,
}

impl GcStats {
    /// Nodes reclaimed by the collection.
    pub fn reclaimed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_covers_chunks_contiguously() {
        // Walk the first few chunk boundaries: offsets restart at 0 and
        // chunk sizes double.
        let base = 1u32 << CHUNK_BASE_LOG2;
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(base - 1), (0, base as usize - 1));
        assert_eq!(locate(base), (1, 0));
        assert_eq!(locate(3 * base - 1), (1, 2 * base as usize - 1));
        assert_eq!(locate(3 * base), (2, 0));
        // Contiguity: every local maps into range and increments by one.
        let mut prev = locate(0);
        for local in 1..(16 * base) {
            let (k, off) = locate(local);
            if k == prev.0 {
                assert_eq!(off, prev.1 + 1);
            } else {
                assert_eq!((k, off), (prev.0 + 1, 0));
            }
            prev = (k, off);
        }
    }

    #[test]
    fn terminal_occupies_global_index_zero() {
        let s = SharedState::new(8);
        assert_eq!(s.node_count(), 1);
        let t = s.node(0);
        assert_eq!(t.var, TERMINAL_VAR);
    }

    #[test]
    fn mk_raw_is_idempotent_and_publishes_nodes() {
        let s = SharedState::new(8);
        let n = Node {
            var: 3,
            lo: Ref::TRUE,
            hi: Ref::FALSE,
        };
        let (r1, hit1) = s.mk_raw(n);
        let (r2, hit2) = s.mk_raw(n);
        assert_eq!(r1, r2, "hash-consing must land one canonical ref");
        assert!(!hit1);
        assert!(hit2);
        assert!(!r1.is_complemented());
        assert!(s.node(r1.index()) == n, "stored node must round-trip");
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn shared_cache_roundtrip_and_sentinel() {
        let c = SharedIteCache::new(6);
        let (f, g, h, r) = (Ref(2), Ref(4), Ref(7), Ref(12));
        assert_eq!(c.lookup(f, g, h), None);
        c.insert(f, g, h, r);
        assert_eq!(c.lookup(f, g, h), Some(r));
        assert_eq!(c.occupied(), 1);
        // Terminal first argument: never stored, never matched.
        c.insert(Ref(0), g, h, r);
        assert_eq!(c.lookup(Ref(0), g, h), None);
        assert_eq!(c.occupied(), 1);
        c.clear();
        assert_eq!(c.lookup(f, g, h), None);
        assert_eq!(c.occupied(), 0);
    }

    #[test]
    fn shared_cache_bounds_occupancy_under_churn() {
        let c = SharedIteCache::new(4); // 16 slots
        for i in 0..400u32 {
            c.insert(Ref(2 + 2 * i), Ref(4), Ref(7), Ref(12));
        }
        assert!(c.occupied() <= c.capacity());
        assert!(c.evictions() > 0, "overfill must evict");
    }

    #[test]
    fn concurrent_mk_lands_canonical_refs() {
        // All threads race to intern the same node set; every thread
        // must observe identical refs for identical nodes.
        let s = SharedState::new(8);
        let refs: Vec<Vec<Ref>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        (0..200u32)
                            .map(|v| {
                                let n = Node {
                                    var: v,
                                    lo: Ref::TRUE,
                                    hi: Ref::FALSE,
                                };
                                s.mk_raw(n).0
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        for worker in &refs[1..] {
            assert_eq!(worker, &refs[0]);
        }
        assert_eq!(s.node_count(), 201); // terminal + 200 distinct nodes
    }
}
