//! Manager-independent snapshots of single functions.
//!
//! A [`Ref`] is only meaningful inside the manager that created it, which
//! makes one-manager-per-thread sharding impossible without a transfer
//! format. [`PortableBdd`] is that format: a topologically sorted copy of
//! one function's reachable nodes, with child references encoded
//! positionally instead of as arena indices. Exporting walks the diagram
//! once; importing replays it bottom-up through `mk`, so the rebuilt
//! function is hash-consed into the target manager and lands on the
//! canonical `Ref` for that function there — imports from different
//! workers that denote the same packet set collapse to the same node.
//!
//! Complement edges travel in the format: each slot carries the edge's
//! complement tag in its low bit, and there is a single terminal slot
//! (`TRUE`; `FALSE` is the complemented terminal slot, mirroring the
//! in-memory representation). Import goes through `mk`, which re-derives
//! the canonical tag placement — so a snapshot whose tags were arranged
//! differently (e.g. a future on-disk format produced by another tool)
//! still lands on the canonical form.

use crate::fxhash::FxHashMap;
use crate::manager::Bdd;
use crate::node::{Ref, Var, TERMINAL_VAR};

/// Child encoding inside a [`PortableBdd`]: bit 0 is the complement tag;
/// the remaining bits select the target — 0 for the terminal, `k + 1` for
/// `nodes[k]`, which always precedes the referencing node (children
/// first). Targets are stored regular; the tag is per-edge, exactly like
/// the in-memory `Ref` (so slot 0 is TRUE and slot 1 is FALSE).
pub type Slot = u32;

/// Why a [`PortableBdd`] failed validation on import.
///
/// Snapshots built by [`Bdd::export`] are well-formed by construction,
/// but a daemon ingesting snapshots over the wire must treat them as
/// untrusted: a malformed snapshot is a client error to report, not a
/// panic to die on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortableBddError {
    /// A child slot of `nodes[node]` (or the root, when `node == len`)
    /// points past the nodes defined before it — a forward reference or
    /// a truncated node array.
    SlotOutOfRange {
        /// Index of the referencing node (`len` for the root slot).
        node: usize,
        /// The offending raw slot value.
        slot: Slot,
    },
    /// `nodes[node]` has a complement tag on its lo edge, violating the
    /// canonical form the exporter guarantees.
    ComplementedLo {
        /// Index of the offending node.
        node: usize,
    },
    /// `nodes[node]` carries the reserved terminal variable id.
    TerminalVar {
        /// Index of the offending node.
        node: usize,
    },
    /// A child of `nodes[node]` does not have a strictly larger variable
    /// id, so the snapshot is not ordered.
    VarOrdering {
        /// Index of the offending node.
        node: usize,
    },
}

impl std::fmt::Display for PortableBddError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PortableBddError::SlotOutOfRange { node, slot } => {
                write!(f, "node {node}: slot {slot} references an undefined node")
            }
            PortableBddError::ComplementedLo { node } => {
                write!(f, "node {node}: lo edge carries a complement tag")
            }
            PortableBddError::TerminalVar { node } => {
                write!(f, "node {node}: reserved terminal variable id")
            }
            PortableBddError::VarOrdering { node } => {
                write!(f, "node {node}: child variable not below parent")
            }
        }
    }
}

impl std::error::Error for PortableBddError {}

/// A self-contained, manager-independent copy of one BDD function.
///
/// Plain data (`Send`): build it in one thread's manager, move it across
/// the scope boundary, import it into another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableBdd {
    /// `(var, lo, hi)` triples in children-first order. `lo` slots are
    /// always regular (the exporter's manager maintains the canonical
    /// form); `hi` and the root may carry the complement bit.
    nodes: Vec<(Var, Slot, Slot)>,
    root: Slot,
}

impl PortableBdd {
    /// Number of decision nodes in the snapshot (the terminal excluded).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot is a bare terminal.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Assemble a snapshot from raw parts — the decode half of a wire
    /// format. No validation happens here; [`Bdd::try_import`] validates
    /// on use, so a malformed wire payload surfaces as a
    /// [`PortableBddError`] rather than a panic.
    pub fn from_parts(nodes: Vec<(Var, Slot, Slot)>, root: Slot) -> PortableBdd {
        PortableBdd { nodes, root }
    }

    /// The `(var, lo, hi)` triples in children-first order — the encode
    /// half of a wire format.
    pub fn nodes(&self) -> &[(Var, Slot, Slot)] {
        &self.nodes
    }

    /// The root slot.
    pub fn root(&self) -> Slot {
        self.root
    }
}

impl Bdd {
    /// Snapshot the function `f` into a manager-independent form.
    pub fn export(&self, f: Ref) -> PortableBdd {
        // Iterative post-order over *regular* nodes (a node and its
        // complement are one arena entry and one snapshot entry); a node
        // is emitted only after both children, so slots always point
        // backwards.
        let mut slot_of: FxHashMap<Ref, Slot> = FxHashMap::default();
        let mut nodes: Vec<(Var, Slot, Slot)> = Vec::new();
        let slot = |slots: &FxHashMap<Ref, Slot>, r: Ref| -> Slot {
            let tag = r.is_complemented() as Slot;
            if r.is_terminal() {
                tag // SLOT_TRUE or SLOT_FALSE
            } else {
                slots[&r.regular()] | tag
            }
        };
        enum Frame {
            Enter(Ref),
            Emit(Ref),
        }
        let mut stack = vec![Frame::Enter(f.regular())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(r) => {
                    if r.is_terminal() || slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    stack.push(Frame::Emit(r));
                    stack.push(Frame::Enter(n.hi.regular()));
                    stack.push(Frame::Enter(n.lo.regular()));
                }
                Frame::Emit(r) => {
                    if slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    nodes.push((n.var, slot(&slot_of, n.lo), slot(&slot_of, n.hi)));
                    slot_of.insert(r, (nodes.len() as Slot) << 1);
                }
            }
        }
        PortableBdd {
            root: slot(&slot_of, f),
            nodes,
        }
    }

    /// Rebuild a snapshot inside this manager and return its canonical
    /// `Ref` here. Importing the export of a function the manager already
    /// knows yields the original `Ref` exactly.
    ///
    /// Panics on a malformed snapshot; use [`Bdd::try_import`] for
    /// untrusted input.
    pub fn import(&mut self, p: &PortableBdd) -> Ref {
        self.try_import(p).expect("malformed PortableBdd snapshot")
    }

    /// [`Bdd::import`] for untrusted snapshots: validates every slot
    /// (children-first references only, regular lo edges, ordered and
    /// non-terminal variables) and reports the first violation instead
    /// of panicking or silently building a non-canonical diagram.
    pub fn try_import(&mut self, p: &PortableBdd) -> Result<Ref, PortableBddError> {
        let mut refs: Vec<Ref> = Vec::with_capacity(p.nodes.len());
        // Resolve a slot against the nodes built so far; `node` is the
        // index of the referencing node, for error reporting.
        let resolve = |refs: &[Ref], node: usize, s: Slot| -> Result<Ref, PortableBddError> {
            let base = match s >> 1 {
                0 => Ref::TRUE,
                k if (k as usize) <= refs.len() => refs[k as usize - 1],
                _ => return Err(PortableBddError::SlotOutOfRange { node, slot: s }),
            };
            Ok(if s & 1 == 1 { base.complement() } else { base })
        };
        // Variable of the node a slot targets (terminals order below all).
        let slot_var = |p: &PortableBdd, s: Slot| -> Var {
            match s >> 1 {
                0 => TERMINAL_VAR,
                k => p.nodes[k as usize - 1].0,
            }
        };
        for (idx, &(var, lo, hi)) in p.nodes.iter().enumerate() {
            if var == TERMINAL_VAR {
                return Err(PortableBddError::TerminalVar { node: idx });
            }
            if lo & 1 == 1 {
                return Err(PortableBddError::ComplementedLo { node: idx });
            }
            let lo_ref = resolve(&refs, idx, lo)?;
            let hi_ref = resolve(&refs, idx, hi)?;
            if slot_var(p, lo) <= var || slot_var(p, hi) <= var {
                return Err(PortableBddError::VarOrdering { node: idx });
            }
            refs.push(self.mk(var, lo_ref, hi_ref));
        }
        resolve(&refs, p.nodes.len(), p.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bdd: &mut Bdd) -> Ref {
        // (x0 ∧ x2) ∨ (¬x1 ∧ x3) — shares no structure accidentally.
        let a = bdd.var(0);
        let c = bdd.var(2);
        let ac = bdd.and(a, c);
        let nb = bdd.nvar(1);
        let d = bdd.var(3);
        let nbd = bdd.and(nb, d);
        bdd.or(ac, nbd)
    }

    #[test]
    fn roundtrip_in_same_manager_is_identity() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert_eq!(bdd.import(&p), f);
        for t in [Ref::FALSE, Ref::TRUE] {
            let pt = bdd.export(t);
            assert!(pt.is_empty());
            assert_eq!(bdd.import(&pt), t);
        }
    }

    #[test]
    fn complement_roundtrips_as_the_same_nodes() {
        // ¬f shares f's diagram, so its export has the same node list;
        // only the root slot's tag differs, and both import exactly.
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let nf = bdd.not(f);
        let p = bdd.export(f);
        let pn = bdd.export(nf);
        assert_eq!(p.nodes, pn.nodes);
        assert_eq!(p.root ^ 1, pn.root);
        assert_eq!(bdd.import(&pn), nf);
    }

    #[test]
    fn export_len_matches_function_size() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        // size() counts the shared terminal too.
        assert_eq!(bdd.export(f).len() + 1, bdd.size(f));
    }

    #[test]
    fn lo_slots_are_regular_in_exports() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert!(!p.is_empty());
        for &(_, lo, _) in &p.nodes {
            assert_eq!(lo & 1, 0, "canonical form: lo edges are regular");
        }
    }

    #[test]
    fn cross_manager_transfer_preserves_semantics() {
        let mut src = Bdd::new();
        let f = sample(&mut src);
        let p = src.export(f);

        // Target manager with a different allocation history: the raw
        // indices cannot line up, only the function can.
        let mut dst = Bdd::new();
        let _noise = {
            let x = dst.var(7);
            let y = dst.nvar(5);
            dst.and(x, y)
        };
        let g = dst.import(&p);
        assert_eq!(dst.probability(g), src.probability(f));
        assert_eq!(dst.sat_count(g, 4), src.sat_count(f, 4));
        assert_eq!(dst.support(g), src.support(f));
        // Rebuilding the same function natively lands on the same Ref.
        let native = sample(&mut dst);
        assert_eq!(g, native);
    }

    #[test]
    fn try_import_accepts_every_well_formed_export() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert_eq!(bdd.try_import(&p), Ok(f));
    }

    #[test]
    fn truncated_node_array_is_rejected() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        // Drop the last node (the root's definition): the root slot now
        // points past the array.
        let mut nodes = p.nodes().to_vec();
        nodes.pop();
        let bad = PortableBdd::from_parts(nodes, p.root());
        assert!(matches!(
            bdd.try_import(&bad),
            Err(PortableBddError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn forward_child_reference_is_rejected() {
        // One node whose hi child claims to be node index 5 of a
        // one-node array (slot (5+1)<<1 = 12).
        let bad = PortableBdd::from_parts(vec![(0, 0, 12)], 2);
        let mut bdd = Bdd::new();
        assert_eq!(
            bdd.try_import(&bad),
            Err(PortableBddError::SlotOutOfRange { node: 0, slot: 12 })
        );
    }

    #[test]
    fn complemented_lo_edge_is_rejected() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        // Tag the first node's lo edge: violates the canonical form.
        let mut nodes = p.nodes().to_vec();
        nodes[0].1 |= 1;
        let bad = PortableBdd::from_parts(nodes, p.root());
        assert_eq!(
            bdd.try_import(&bad),
            Err(PortableBddError::ComplementedLo { node: 0 })
        );
    }

    #[test]
    fn terminal_variable_id_is_rejected() {
        let bad = PortableBdd::from_parts(vec![(Var::MAX, 0, 1)], 2);
        let mut bdd = Bdd::new();
        assert_eq!(
            bdd.try_import(&bad),
            Err(PortableBddError::TerminalVar { node: 0 })
        );
    }

    #[test]
    fn unordered_variables_are_rejected() {
        // nodes[0] splits on var 5; nodes[1] splits on var 5 too and
        // points at nodes[0] — equal vars are not strictly ordered.
        let bad = PortableBdd::from_parts(vec![(5, 0, 1), (5, 0, 2)], 4);
        let mut bdd = Bdd::new();
        assert_eq!(
            bdd.try_import(&bad),
            Err(PortableBddError::VarOrdering { node: 1 })
        );
    }

    #[test]
    fn imports_from_two_sources_collapse_when_equal() {
        let mut a = Bdd::new();
        let mut b = Bdd::new();
        // Same function, built in different orders in different managers.
        let fa = {
            let x = a.var(1);
            let y = a.var(4);
            a.or(x, y)
        };
        let fb = {
            let y = b.var(4);
            let x = b.var(1);
            b.or(y, x)
        };
        let mut dst = Bdd::new();
        let ga = dst.import(&a.export(fa));
        let gb = dst.import(&b.export(fb));
        assert_eq!(ga, gb);
    }
}
