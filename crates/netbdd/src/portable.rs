//! Manager-independent snapshots of single functions.
//!
//! A [`Ref`] is only meaningful inside the manager that created it, which
//! makes one-manager-per-thread sharding impossible without a transfer
//! format. [`PortableBdd`] is that format: a topologically sorted copy of
//! one function's reachable nodes, with child references encoded
//! positionally instead of as arena indices. Exporting walks the diagram
//! once; importing replays it bottom-up through `mk`, so the rebuilt
//! function is hash-consed into the target manager and lands on the
//! canonical `Ref` for that function there — imports from different
//! workers that denote the same packet set collapse to the same node.
//!
//! Complement edges travel in the format: each slot carries the edge's
//! complement tag in its low bit, and there is a single terminal slot
//! (`TRUE`; `FALSE` is the complemented terminal slot, mirroring the
//! in-memory representation). Import goes through `mk`, which re-derives
//! the canonical tag placement — so a snapshot whose tags were arranged
//! differently (e.g. a future on-disk format produced by another tool)
//! still lands on the canonical form.

use crate::fxhash::FxHashMap;
use crate::manager::Bdd;
use crate::node::{Ref, Var};

/// Child encoding inside a [`PortableBdd`]: bit 0 is the complement tag;
/// the remaining bits select the target — 0 for the terminal, `k + 1` for
/// `nodes[k]`, which always precedes the referencing node (children
/// first). Targets are stored regular; the tag is per-edge, exactly like
/// the in-memory `Ref` (so slot 0 is TRUE and slot 1 is FALSE).
type Slot = u32;

/// A self-contained, manager-independent copy of one BDD function.
///
/// Plain data (`Send`): build it in one thread's manager, move it across
/// the scope boundary, import it into another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableBdd {
    /// `(var, lo, hi)` triples in children-first order. `lo` slots are
    /// always regular (the exporter's manager maintains the canonical
    /// form); `hi` and the root may carry the complement bit.
    nodes: Vec<(Var, Slot, Slot)>,
    root: Slot,
}

impl PortableBdd {
    /// Number of decision nodes in the snapshot (the terminal excluded).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot is a bare terminal.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl Bdd {
    /// Snapshot the function `f` into a manager-independent form.
    pub fn export(&self, f: Ref) -> PortableBdd {
        // Iterative post-order over *regular* nodes (a node and its
        // complement are one arena entry and one snapshot entry); a node
        // is emitted only after both children, so slots always point
        // backwards.
        let mut slot_of: FxHashMap<Ref, Slot> = FxHashMap::default();
        let mut nodes: Vec<(Var, Slot, Slot)> = Vec::new();
        let slot = |slots: &FxHashMap<Ref, Slot>, r: Ref| -> Slot {
            let tag = r.is_complemented() as Slot;
            if r.is_terminal() {
                tag // SLOT_TRUE or SLOT_FALSE
            } else {
                slots[&r.regular()] | tag
            }
        };
        enum Frame {
            Enter(Ref),
            Emit(Ref),
        }
        let mut stack = vec![Frame::Enter(f.regular())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(r) => {
                    if r.is_terminal() || slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    stack.push(Frame::Emit(r));
                    stack.push(Frame::Enter(n.hi.regular()));
                    stack.push(Frame::Enter(n.lo.regular()));
                }
                Frame::Emit(r) => {
                    if slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    nodes.push((n.var, slot(&slot_of, n.lo), slot(&slot_of, n.hi)));
                    slot_of.insert(r, (nodes.len() as Slot) << 1);
                }
            }
        }
        PortableBdd {
            root: slot(&slot_of, f),
            nodes,
        }
    }

    /// Rebuild a snapshot inside this manager and return its canonical
    /// `Ref` here. Importing the export of a function the manager already
    /// knows yields the original `Ref` exactly.
    pub fn import(&mut self, p: &PortableBdd) -> Ref {
        let mut refs: Vec<Ref> = Vec::with_capacity(p.nodes.len());
        let resolve = |refs: &[Ref], s: Slot| -> Ref {
            let base = match s >> 1 {
                0 => Ref::TRUE,
                k => refs[k as usize - 1],
            };
            if s & 1 == 1 {
                base.complement()
            } else {
                base
            }
        };
        for &(var, lo, hi) in &p.nodes {
            let lo = resolve(&refs, lo);
            let hi = resolve(&refs, hi);
            refs.push(self.mk(var, lo, hi));
        }
        resolve(&refs, p.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bdd: &mut Bdd) -> Ref {
        // (x0 ∧ x2) ∨ (¬x1 ∧ x3) — shares no structure accidentally.
        let a = bdd.var(0);
        let c = bdd.var(2);
        let ac = bdd.and(a, c);
        let nb = bdd.nvar(1);
        let d = bdd.var(3);
        let nbd = bdd.and(nb, d);
        bdd.or(ac, nbd)
    }

    #[test]
    fn roundtrip_in_same_manager_is_identity() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert_eq!(bdd.import(&p), f);
        for t in [Ref::FALSE, Ref::TRUE] {
            let pt = bdd.export(t);
            assert!(pt.is_empty());
            assert_eq!(bdd.import(&pt), t);
        }
    }

    #[test]
    fn complement_roundtrips_as_the_same_nodes() {
        // ¬f shares f's diagram, so its export has the same node list;
        // only the root slot's tag differs, and both import exactly.
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let nf = bdd.not(f);
        let p = bdd.export(f);
        let pn = bdd.export(nf);
        assert_eq!(p.nodes, pn.nodes);
        assert_eq!(p.root ^ 1, pn.root);
        assert_eq!(bdd.import(&pn), nf);
    }

    #[test]
    fn export_len_matches_function_size() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        // size() counts the shared terminal too.
        assert_eq!(bdd.export(f).len() + 1, bdd.size(f));
    }

    #[test]
    fn lo_slots_are_regular_in_exports() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert!(!p.is_empty());
        for &(_, lo, _) in &p.nodes {
            assert_eq!(lo & 1, 0, "canonical form: lo edges are regular");
        }
    }

    #[test]
    fn cross_manager_transfer_preserves_semantics() {
        let mut src = Bdd::new();
        let f = sample(&mut src);
        let p = src.export(f);

        // Target manager with a different allocation history: the raw
        // indices cannot line up, only the function can.
        let mut dst = Bdd::new();
        let _noise = {
            let x = dst.var(7);
            let y = dst.nvar(5);
            dst.and(x, y)
        };
        let g = dst.import(&p);
        assert_eq!(dst.probability(g), src.probability(f));
        assert_eq!(dst.sat_count(g, 4), src.sat_count(f, 4));
        assert_eq!(dst.support(g), src.support(f));
        // Rebuilding the same function natively lands on the same Ref.
        let native = sample(&mut dst);
        assert_eq!(g, native);
    }

    #[test]
    fn imports_from_two_sources_collapse_when_equal() {
        let mut a = Bdd::new();
        let mut b = Bdd::new();
        // Same function, built in different orders in different managers.
        let fa = {
            let x = a.var(1);
            let y = a.var(4);
            a.or(x, y)
        };
        let fb = {
            let y = b.var(4);
            let x = b.var(1);
            b.or(y, x)
        };
        let mut dst = Bdd::new();
        let ga = dst.import(&a.export(fa));
        let gb = dst.import(&b.export(fb));
        assert_eq!(ga, gb);
    }
}
