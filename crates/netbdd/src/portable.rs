//! Manager-independent snapshots of single functions.
//!
//! A [`Ref`] is only meaningful inside the manager that created it, which
//! makes one-manager-per-thread sharding impossible without a transfer
//! format. [`PortableBdd`] is that format: a topologically sorted copy of
//! one function's reachable nodes, with child references encoded
//! positionally instead of as arena indices. Exporting walks the diagram
//! once; importing replays it bottom-up through `mk`, so the rebuilt
//! function is hash-consed into the target manager and lands on the
//! canonical `Ref` for that function there — imports from different
//! workers that denote the same packet set collapse to the same node.

use crate::fxhash::FxHashMap;
use crate::manager::Bdd;
use crate::node::{Ref, Var};

/// Child encoding inside a [`PortableBdd`]: 0 is FALSE, 1 is TRUE, and
/// `k + 2` points at `nodes[k]`, which always precedes the referencing
/// node (children first).
type Slot = u32;

const SLOT_FALSE: Slot = 0;
const SLOT_TRUE: Slot = 1;

/// A self-contained, manager-independent copy of one BDD function.
///
/// Plain data (`Send`): build it in one thread's manager, move it across
/// the scope boundary, import it into another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableBdd {
    /// `(var, lo, hi)` triples in children-first order.
    nodes: Vec<(Var, Slot, Slot)>,
    root: Slot,
}

impl PortableBdd {
    /// Number of decision nodes in the snapshot (terminals excluded).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot is a bare terminal.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl Bdd {
    /// Snapshot the function `f` into a manager-independent form.
    pub fn export(&self, f: Ref) -> PortableBdd {
        // Iterative post-order: a node is emitted only after both
        // children, so slots always point backwards.
        let mut slot_of: FxHashMap<Ref, Slot> = FxHashMap::default();
        let mut nodes: Vec<(Var, Slot, Slot)> = Vec::new();
        let slot = |slots: &FxHashMap<Ref, Slot>, r: Ref| -> Slot {
            match r {
                Ref::FALSE => SLOT_FALSE,
                Ref::TRUE => SLOT_TRUE,
                _ => slots[&r],
            }
        };
        enum Frame {
            Enter(Ref),
            Emit(Ref),
        }
        let mut stack = vec![Frame::Enter(f)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(r) => {
                    if r.is_terminal() || slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    stack.push(Frame::Emit(r));
                    stack.push(Frame::Enter(n.hi));
                    stack.push(Frame::Enter(n.lo));
                }
                Frame::Emit(r) => {
                    if slot_of.contains_key(&r) {
                        continue;
                    }
                    let n = self.node(r);
                    nodes.push((n.var, slot(&slot_of, n.lo), slot(&slot_of, n.hi)));
                    slot_of.insert(r, (nodes.len() - 1) as Slot + 2);
                }
            }
        }
        PortableBdd {
            root: slot(&slot_of, f),
            nodes,
        }
    }

    /// Rebuild a snapshot inside this manager and return its canonical
    /// `Ref` here. Importing the export of a function the manager already
    /// knows yields the original `Ref` exactly.
    pub fn import(&mut self, p: &PortableBdd) -> Ref {
        let mut refs: Vec<Ref> = Vec::with_capacity(p.nodes.len());
        let resolve = |refs: &[Ref], s: Slot| -> Ref {
            match s {
                SLOT_FALSE => Ref::FALSE,
                SLOT_TRUE => Ref::TRUE,
                _ => refs[s as usize - 2],
            }
        };
        for &(var, lo, hi) in &p.nodes {
            let lo = resolve(&refs, lo);
            let hi = resolve(&refs, hi);
            refs.push(self.mk(var, lo, hi));
        }
        resolve(&refs, p.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bdd: &mut Bdd) -> Ref {
        // (x0 ∧ x2) ∨ (¬x1 ∧ x3) — shares no structure accidentally.
        let a = bdd.var(0);
        let c = bdd.var(2);
        let ac = bdd.and(a, c);
        let nb = bdd.nvar(1);
        let d = bdd.var(3);
        let nbd = bdd.and(nb, d);
        bdd.or(ac, nbd)
    }

    #[test]
    fn roundtrip_in_same_manager_is_identity() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        let p = bdd.export(f);
        assert_eq!(bdd.import(&p), f);
        for t in [Ref::FALSE, Ref::TRUE] {
            let pt = bdd.export(t);
            assert!(pt.is_empty());
            assert_eq!(bdd.import(&pt), t);
        }
    }

    #[test]
    fn export_len_matches_function_size() {
        let mut bdd = Bdd::new();
        let f = sample(&mut bdd);
        // size() counts terminals too.
        assert_eq!(bdd.export(f).len() + 2, bdd.size(f));
    }

    #[test]
    fn cross_manager_transfer_preserves_semantics() {
        let mut src = Bdd::new();
        let f = sample(&mut src);
        let p = src.export(f);

        // Target manager with a different allocation history: the raw
        // indices cannot line up, only the function can.
        let mut dst = Bdd::new();
        let _noise = {
            let x = dst.var(7);
            let y = dst.nvar(5);
            dst.and(x, y)
        };
        let g = dst.import(&p);
        assert_eq!(dst.probability(g), src.probability(f));
        assert_eq!(dst.sat_count(g, 4), src.sat_count(f, 4));
        assert_eq!(dst.support(g), src.support(f));
        // Rebuilding the same function natively lands on the same Ref.
        let native = sample(&mut dst);
        assert_eq!(g, native);
    }

    #[test]
    fn imports_from_two_sources_collapse_when_equal() {
        let mut a = Bdd::new();
        let mut b = Bdd::new();
        // Same function, built in different orders in different managers.
        let fa = {
            let x = a.var(1);
            let y = a.var(4);
            a.or(x, y)
        };
        let fb = {
            let y = b.var(4);
            let x = b.var(1);
            b.or(y, x)
        };
        let mut dst = Bdd::new();
        let ga = dst.import(&a.export(fa));
        let gb = dst.import(&b.export(fb));
        assert_eq!(ga, gb);
    }
}
