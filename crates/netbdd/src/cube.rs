//! Satisfying-assignment extraction.
//!
//! Concrete tests (traceroute, Pingmesh) need a representative packet from
//! a symbolic set; the analyzer needs witnesses when reporting untested
//! packet space back to engineers. A [`Cube`] is a partial assignment: the
//! variables a function actually constrains on one satisfying path.

use crate::manager::Bdd;
use crate::node::{Ref, Var};

/// A partial variable assignment (a conjunction of literals).
///
/// Variables absent from the cube are unconstrained; any completion of the
/// cube satisfies the function it was extracted from.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cube {
    literals: Vec<(Var, bool)>,
}

impl Cube {
    /// The literals of the cube, ascending by variable.
    pub fn literals(&self) -> &[(Var, bool)] {
        &self.literals
    }

    /// Value assigned to `var`, if the cube constrains it.
    pub fn get(&self, var: Var) -> Option<bool> {
        self.literals
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.literals[i].1)
    }

    /// Read `width` consecutive variables starting at `start` as an MSB-first
    /// integer, treating unconstrained bits as 0.
    pub fn read_bits(&self, start: Var, width: u32) -> u128 {
        let mut out = 0u128;
        for i in 0..width {
            out <<= 1;
            if self.get(start + i) == Some(true) {
                out |= 1;
            }
        }
        out
    }
}

impl Bdd {
    /// One satisfying cube of `f`, or `None` if `f` is the empty set.
    ///
    /// The extraction is deterministic: at every node it prefers the `lo`
    /// (false) branch when that branch can still reach `TRUE`. Determinism
    /// matters for reproducible test-packet selection.
    pub fn some_cube(&self, f: Ref) -> Option<Cube> {
        self.some_cube_with(f, |_| false)
    }

    /// One satisfying cube of `f`, steering free branch choices with
    /// `prefer_hi`.
    ///
    /// Wherever *both* children of a node can still reach `TRUE`, the
    /// branch is chosen by `prefer_hi(var)`; forced nodes (one child
    /// `FALSE`) follow the only viable branch regardless, so the result
    /// always satisfies `f`. [`Bdd::some_cube`] is the `|_| false`
    /// specialization.
    ///
    /// Children are resolved through `Bdd::expand`, which pushes the
    /// parent's complement tag down — the parity discipline every walk
    /// in this module shares. Resolving `lo`/`hi` from the raw node
    /// instead would return a cube of `¬f` whenever the path crosses an
    /// odd number of complemented edges, which is exactly the slip the
    /// negation-heavy witness differential tests guard against.
    pub fn some_cube_with(&self, f: Ref, mut prefer_hi: impl FnMut(Var) -> bool) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        let mut literals = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let var = self.node(cur).var;
            let (lo, hi) = self.expand(cur);
            let take_hi = if lo.is_false() {
                true
            } else if hi.is_false() {
                false
            } else {
                prefer_hi(var)
            };
            if take_hi {
                literals.push((var, true));
                cur = hi;
            } else {
                literals.push((var, false));
                cur = lo;
            }
        }
        debug_assert!(cur.is_true());
        Some(Cube { literals })
    }

    /// Evaluate `f` under a total assignment given as a predicate on
    /// variables.
    pub fn eval(&self, f: Ref, assignment: impl Fn(Var) -> bool) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let var = self.node(cur).var;
            let (lo, hi) = self.expand(cur);
            cur = if assignment(var) { hi } else { lo };
        }
        cur.is_true()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_cube() {
        let bdd = Bdd::new();
        assert!(bdd.some_cube(Ref::FALSE).is_none());
    }

    #[test]
    fn full_set_has_empty_cube() {
        let bdd = Bdd::new();
        let cube = bdd.some_cube(Ref::TRUE).unwrap();
        assert!(cube.literals().is_empty());
    }

    #[test]
    fn cube_satisfies_function() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let nb = bdd.nvar(1);
        let f = bdd.and(a, nb);
        let cube = bdd.some_cube(f).unwrap();
        assert_eq!(cube.get(0), Some(true));
        assert_eq!(cube.get(1), Some(false));
        assert!(bdd.eval(f, |v| cube.get(v).unwrap_or(false)));
    }

    #[test]
    fn cube_prefers_lo_branch() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0); // both branches viable in a∨¬a? Use a∨b.
        let b = bdd.var(1);
        let f = bdd.or(a, b);
        let cube = bdd.some_cube(f).unwrap();
        // lo branch of var0 (a=false) leads to b, then b must be true.
        assert_eq!(cube.get(0), Some(false));
        assert_eq!(cube.get(1), Some(true));
    }

    #[test]
    fn steered_cube_takes_the_preferred_branch_when_free() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.or(a, b);
        // Prefer hi everywhere: var0 is free (both branches viable).
        let cube = bdd.some_cube_with(f, |_| true).unwrap();
        assert_eq!(cube.get(0), Some(true));
        assert!(bdd.eval(f, |v| cube.get(v).unwrap_or(false)));
        // Forced nodes ignore the preference: in a∧¬b both literals are
        // pinned, whatever the chooser says.
        let nb = bdd.not(b);
        let g = bdd.and(a, nb);
        let cube = bdd.some_cube_with(g, |_| false).unwrap();
        assert_eq!(cube.get(0), Some(true));
        assert_eq!(cube.get(1), Some(false));
    }

    #[test]
    fn steered_cube_satisfies_negated_functions() {
        // Negation flips complement tags on the root; the walk must keep
        // returning members of the *negated* set.
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let nf = bdd.not(f);
        for prefer in [false, true] {
            let cube = bdd.some_cube_with(nf, |_| prefer).unwrap();
            assert!(bdd.eval(nf, |v| cube.get(v).unwrap_or(false)));
            assert!(!bdd.eval(f, |v| cube.get(v).unwrap_or(false)));
        }
    }

    #[test]
    fn read_bits_msb_first() {
        let mut bdd = Bdd::new();
        // Encode value 0b101 on vars 4..7.
        let f = bdd.bits_eq(4, 3, 0b101);
        let cube = bdd.some_cube(f).unwrap();
        assert_eq!(cube.read_bits(4, 3), 0b101);
    }

    #[test]
    fn eval_walks_the_diagram() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.xor(a, b);
        assert!(bdd.eval(f, |v| v == 0));
        assert!(bdd.eval(f, |v| v == 1));
        assert!(!bdd.eval(f, |_| true));
        assert!(!bdd.eval(f, |_| false));
    }
}

impl Bdd {
    /// Enumerate satisfying cubes of `f`, up to `limit`.
    ///
    /// The cubes are the root-to-`TRUE` paths of the diagram; they are
    /// pairwise disjoint and their union is exactly `f` — a canonical
    /// disjoint DNF. Used to render untested packet space as a readable
    /// list of header regions.
    pub fn cubes(&self, f: Ref, limit: usize) -> Vec<Cube> {
        let mut out = Vec::new();
        let mut literals: Vec<(Var, bool)> = Vec::new();
        self.cubes_rec(f, limit, &mut literals, &mut out);
        out
    }

    fn cubes_rec(
        &self,
        f: Ref,
        limit: usize,
        literals: &mut Vec<(Var, bool)>,
        out: &mut Vec<Cube>,
    ) {
        if out.len() >= limit {
            return;
        }
        if f.is_false() {
            return;
        }
        if f.is_true() {
            out.push(Cube {
                literals: literals.clone(),
            });
            return;
        }
        let var = self.node(f).var;
        let (lo, hi) = self.expand(f);
        literals.push((var, false));
        self.cubes_rec(lo, limit, literals, out);
        literals.pop();
        if out.len() >= limit {
            return;
        }
        literals.push((var, true));
        self.cubes_rec(hi, limit, literals, out);
        literals.pop();
    }
}

#[cfg(test)]
mod cubes_tests {
    use super::*;

    #[test]
    fn cubes_cover_the_function_disjointly() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let cubes = bdd.cubes(f, 100);
        // Rebuild the function from its cubes.
        let parts: Vec<Ref> = cubes.iter().map(|c| bdd.cube_of(c.literals())).collect();
        // Disjointness.
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                assert!(!bdd.intersects(parts[i], parts[j]));
            }
        }
        let rebuilt = bdd.or_all(parts);
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn cube_limit_truncates() {
        let mut bdd = Bdd::new();
        // xor chains have exponentially many cubes.
        let mut f = bdd.var(0);
        for v in 1..10 {
            let x = bdd.var(v);
            f = bdd.xor(f, x);
        }
        let cubes = bdd.cubes(f, 5);
        assert_eq!(cubes.len(), 5);
    }

    #[test]
    fn terminal_cubes() {
        let bdd = Bdd::new();
        assert!(bdd.cubes(Ref::FALSE, 10).is_empty());
        let full = bdd.cubes(Ref::TRUE, 10);
        assert_eq!(full.len(), 1);
        assert!(full[0].literals().is_empty());
    }
}
