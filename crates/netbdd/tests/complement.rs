//! Complement-edge representation tests: negation-heavy differentials
//! against the counting oracle, portable round-trips of complemented
//! edges, and a `dot` snapshot of the complement-arc rendering.
//!
//! The general algebra differentials live in `differential.rs`; this
//! suite deliberately skews toward the operations the complement-edge
//! rewrite changed most — `not`, `diff`, and anything whose diagram is
//! reached through a complemented reference.

use netbdd::{Bdd, Ref};
use oracle::{PacketSet, ToySpace};
use proptest::prelude::*;

/// 4-bit dst + 1-bit src + 1-bit proto = 6 variables, 64 packets.
fn space() -> ToySpace {
    ToySpace::new(4, 1, 1)
}

const NVARS: u32 = 6;

/// Negation-heavy expression language: `Not` and `Diff` dominate, so
/// almost every intermediate diagram is reached through a complemented
/// reference and the parity-expansion paths (counting, cubes, export)
/// get exercised on tagged roots, not just regular ones.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_negation_heavy() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    // Weights are expressed by repetition (the uniform one-of picks each
    // listed strategy equally often): 4 parts Not, 3 parts Diff, 1 part
    // each of And/Or/Xor.
    leaf.prop_recursive(6, 96, 2, |inner| {
        let not = || inner.clone().prop_map(|e| Expr::Not(Box::new(e)));
        let diff = || {
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b)))
        };
        prop_oneof![
            not(),
            not(),
            not(),
            not(),
            diff(),
            diff(),
            diff(),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, s: &ToySpace, e: &Expr) -> (Ref, PacketSet) {
    match e {
        Expr::Var(v) => (bdd.var(*v), PacketSet::literal(s, *v, true)),
        Expr::Not(a) => {
            let (fa, sa) = build(bdd, s, a);
            (bdd.not(fa), sa.not(s))
        }
        Expr::Diff(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.diff(fa, fb), sa.diff(&sb))
        }
        Expr::And(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.and(fa, fb), sa.and(&sb))
        }
        Expr::Or(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.or(fa, fb), sa.or(&sb))
        }
        Expr::Xor(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.xor(fa, fb), sa.xor(&sb))
        }
    }
}

proptest! {
    /// Negation-dominated compositions count exactly like the extensional
    /// oracle: membership packet-by-packet, `sat_count` exactly, and
    /// `probability` to within float equality of the count ratio.
    #[test]
    fn negation_heavy_counting_matches_oracle(e in arb_negation_heavy()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        for p in s.packets() {
            prop_assert_eq!(
                bdd.eval(f, |v| s.bit(p, v)),
                set.contains(p),
                "packet {:#x} diverges",
                p
            );
        }
        prop_assert_eq!(bdd.sat_count(f, NVARS), set.sat_count());
        let by_count = set.sat_count() as f64 / (1u64 << NVARS) as f64;
        prop_assert!((bdd.probability(f) - by_count).abs() < 1e-12);
        // Complement counts are exact complements of each other.
        let nf = bdd.not(f);
        prop_assert_eq!(
            bdd.sat_count(nf, NVARS),
            (1u128 << NVARS) - set.sat_count()
        );
    }

    /// `not` is O(1): it never allocates nodes and never touches the
    /// computed cache, no matter what it negates.
    #[test]
    fn not_never_grows_the_arena(e in arb_negation_heavy()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, _) = build(&mut bdd, &s, &e);
        let nodes = bdd.node_count();
        let lookups = bdd.stats().ite_lookups;
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        prop_assert_eq!(bdd.node_count(), nodes);
        prop_assert_eq!(bdd.stats().ite_lookups, lookups);
        prop_assert_eq!(nnf, f);
    }

    /// Snapshots carrying complemented edges import into a *fresh*
    /// manager (different allocation history) with identical semantics:
    /// same `sat_count`, same `probability`, and the imported complement
    /// is exactly the complement of the imported function.
    #[test]
    fn complemented_export_reimports_identically(e in arb_negation_heavy()) {
        let s = space();
        let mut src = Bdd::new();
        let (f, _) = build(&mut src, &s, &e);
        let nf = src.not(f);
        let p = src.export(f);
        let pn = src.export(nf);

        let mut dst = Bdd::new();
        // Different allocation history so raw indices cannot line up.
        let _noise = {
            let x = dst.var(3);
            let y = dst.nvar(5);
            dst.xor(x, y)
        };
        let g = dst.import(&p);
        let gn = dst.import(&pn);
        prop_assert_eq!(gn, dst.not(g), "imported complement stays a complement");
        prop_assert_eq!(dst.sat_count(g, NVARS), src.sat_count(f, NVARS));
        prop_assert_eq!(dst.sat_count(gn, NVARS), src.sat_count(nf, NVARS));
        prop_assert_eq!(dst.probability(g), src.probability(f));
        prop_assert_eq!(dst.probability(gn), src.probability(nf));
        // Both diagrams share nodes in the destination too.
        prop_assert_eq!(dst.size(g), dst.size(gn));
    }
}

/// Exact `dot` snapshot of `x0 ∧ x1` in a fresh manager. The rendering
/// conventions under test: a single terminal box `1`, a dotted entry arc
/// (a conjunction is stored as the complement of its De Morgan dual, so
/// the root reference is complemented), dashed regular low edges, a solid
/// regular high edge, and a dotted complemented high arc into the
/// terminal standing for FALSE.
#[test]
fn dot_snapshot_shows_complement_arcs() {
    let mut bdd = Bdd::new();
    let a = bdd.var(0);
    let b = bdd.var(1);
    let f = bdd.and(a, b);
    let dot = bdd.dot(f, |v| format!("x{v}"));
    let expected = "\
digraph bdd {
  rankdir=TB;
  t [label=\"1\", shape=box];
  e [shape=point];
  e -> n3 [style=dotted];
  n3 [label=\"x0\", shape=circle];
  n3 -> t [style=dashed];
  n3 -> n2 [style=solid];
  n2 [label=\"x1\", shape=circle];
  n2 -> t [style=dashed];
  n2 -> t [style=dotted];
}
";
    assert_eq!(dot, expected);
}
