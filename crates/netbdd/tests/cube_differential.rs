//! Witness-extraction differential tests against the counting oracle.
//!
//! The witness path (gap reports, coverage-guided test generation) leans
//! on one property: every completion of an extracted cube is a member of
//! the source set. On a complement-edge BDD that property dies the
//! moment any walk reads a node's raw children instead of routing
//! through `Bdd::expand` — the returned "witness" then lies in the
//! *negation* of the set whenever the path crosses an odd number of
//! complemented edges. The expression generator here is deliberately
//! negation-heavy (`Not` and `Diff` are over-weighted) so such a parity
//! slip cannot survive: extracted cubes are replayed packet-by-packet
//! against the extensional `oracle::PacketSet` built in lockstep.

use netbdd::{Bdd, Cube, Ref};
use oracle::{PacketSet, ToySpace};
use proptest::prelude::*;

/// 4-bit dst + 1-bit src + 1-bit proto = 6 variables, 64 packets.
fn space() -> ToySpace {
    ToySpace::new(4, 1, 1)
}

const NVARS: u32 = 6;

/// Expression language biased toward complement-heavy shapes.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(6, 96, 2, |inner| {
        // Negation carries triple weight (and Diff double) by entry
        // duplication: parity bugs only show on paths that cross
        // complemented edges, so over-sample them.
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

/// Build the symbolic and extensional representations in lockstep.
fn build(bdd: &mut Bdd, s: &ToySpace, e: &Expr) -> (Ref, PacketSet) {
    match e {
        Expr::Var(v) => (bdd.var(*v), PacketSet::literal(s, *v, true)),
        Expr::Not(a) => {
            let (fa, sa) = build(bdd, s, a);
            (bdd.not(fa), sa.not(s))
        }
        Expr::And(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.and(fa, fb), sa.and(&sb))
        }
        Expr::Or(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.or(fa, fb), sa.or(&sb))
        }
        Expr::Diff(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.diff(fa, fb), sa.diff(&sb))
        }
    }
}

/// Whether toy packet `p` is a completion of `cube` (agrees with every
/// constrained literal).
fn completes(s: &ToySpace, p: u32, cube: &Cube) -> bool {
    cube.literals().iter().all(|&(v, val)| s.bit(p, v) == val)
}

/// Every completion of `cube` must be a member of the oracle set — the
/// membership half of witness correctness, checked extensionally.
fn assert_completions_inside(
    s: &ToySpace,
    set: &PacketSet,
    cube: &Cube,
) -> Result<(), proptest::TestCaseError> {
    let mut any = false;
    for p in s.packets() {
        if completes(s, p, cube) {
            any = true;
            prop_assert!(
                set.contains(p),
                "cube completion {:#x} is outside the source set",
                p
            );
        }
    }
    prop_assert!(any, "cube admits no completion in the toy space");
    Ok(())
}

proptest! {
    /// `some_cube` on negation-heavy inputs: `None` exactly on empty
    /// sets, and every completion of the extracted cube is a member.
    #[test]
    fn one_sat_cube_lies_inside_the_set(e in arb_expr()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        match bdd.some_cube(f) {
            None => prop_assert!(s.packets().all(|p| !set.contains(p))),
            Some(cube) => assert_completions_inside(&s, &set, &cube)?,
        }
    }

    /// The steered variant holds the same membership property for every
    /// polarity preference, not just the lo-first default.
    #[test]
    fn steered_cube_lies_inside_the_set(e in arb_expr(), mask in any::<u32>()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let cube = bdd.some_cube_with(f, |v| mask & (1 << v) != 0);
        match cube {
            None => prop_assert!(s.packets().all(|p| !set.contains(p))),
            Some(cube) => assert_completions_inside(&s, &set, &cube)?,
        }
    }

    /// Cube enumeration is a disjoint exact cover: completions of the
    /// emitted cubes are members, and every member completes exactly one
    /// cube (so the union rebuilds `f` with no overlap — the property
    /// `gaps.rs` region rendering relies on).
    #[test]
    fn enumerated_cubes_tile_the_set(e in arb_expr()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let cubes = bdd.cubes(f, 1 << NVARS);
        for cube in &cubes {
            assert_completions_inside(&s, &set, cube)?;
        }
        for p in s.packets() {
            let owners = cubes.iter().filter(|c| completes(&s, p, c)).count();
            prop_assert_eq!(
                owners,
                usize::from(set.contains(p)),
                "packet {:#x} completes {} cubes",
                p,
                owners
            );
        }
    }

    /// The steered walk is seed-stable and backend-invariant: the same
    /// function extracted from a private and a shared-arena manager
    /// yields literal-identical cubes for the same preference.
    #[test]
    fn steered_cube_is_backend_invariant(e in arb_expr(), mask in any::<u32>()) {
        let s = space();
        let mut private = Bdd::new();
        let mut shared = Bdd::new_shared();
        let (fp, _) = build(&mut private, &s, &e);
        let (fs, _) = build(&mut shared, &s, &e);
        let cp = private.some_cube_with(fp, |v| mask & (1 << v) != 0);
        let cs = shared.some_cube_with(fs, |v| mask & (1 << v) != 0);
        prop_assert_eq!(
            cp.as_ref().map(Cube::literals),
            cs.as_ref().map(Cube::literals)
        );
    }
}
