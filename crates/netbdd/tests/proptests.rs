//! Property-based tests: the BDD algebra against a brute-force truth-table
//! oracle over small variable domains, plus the numeric laws the coverage
//! framework relies on (probability monotonicity and boundedness).

use netbdd::{Bdd, Ref};
use proptest::prelude::*;

/// A tiny expression language evaluated both through the BDD engine and
/// through direct truth-table enumeration.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(bdd: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => bdd.var(*v),
        Expr::Not(a) => {
            let a = build(bdd, a);
            bdd.not(a)
        }
        Expr::And(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.and(a, b)
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.or(a, b)
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.xor(a, b)
        }
    }
}

fn eval(e: &Expr, assignment: u32) -> bool {
    match e {
        Expr::Var(v) => (assignment >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, assignment),
        Expr::And(a, b) => eval(a, assignment) && eval(b, assignment),
        Expr::Or(a, b) => eval(a, assignment) || eval(b, assignment),
        Expr::Xor(a, b) => eval(a, assignment) != eval(b, assignment),
    }
}

fn truth_count(e: &Expr) -> u128 {
    (0..(1u32 << NVARS)).filter(|&a| eval(e, a)).count() as u128
}

proptest! {
    /// The BDD of an expression agrees with the truth table on every
    /// assignment.
    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        for a in 0..(1u32 << NVARS) {
            prop_assert_eq!(bdd.eval(f, |v| (a >> v) & 1 == 1), eval(&e, a));
        }
    }

    /// Exact model counting agrees with enumeration.
    #[test]
    fn sat_count_matches_enumeration(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        prop_assert_eq!(bdd.sat_count(f, NVARS), truth_count(&e));
    }

    /// Probability is the count divided by the space size.
    #[test]
    fn probability_matches_count(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        let p = bdd.probability(f);
        let expected = truth_count(&e) as f64 / (1u64 << NVARS) as f64;
        prop_assert!((p - expected).abs() < 1e-12);
    }

    /// Canonicity: semantically equal expressions produce identical refs.
    #[test]
    fn canonical_equality(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        // Double negation is a semantic no-op and must be a no-op on refs.
        let nf = bdd.not(f);
        let nnf = bdd.not(nf);
        prop_assert_eq!(f, nnf);
        // f ∨ f and f ∧ f are also identities.
        prop_assert_eq!(bdd.or(f, f), f);
        prop_assert_eq!(bdd.and(f, f), f);
    }

    /// Union growth: P(f ∪ g) ≥ max(P(f), P(g)) — the algebraic fact that
    /// makes the paper's coverage metrics monotonic (§3.2).
    #[test]
    fn union_is_monotone(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e1);
        let g = build(&mut bdd, &e2);
        let u = bdd.or(f, g);
        let (pf, pg, pu) = (bdd.probability(f), bdd.probability(g), bdd.probability(u));
        prop_assert!(pu + 1e-12 >= pf.max(pg));
        prop_assert!((0.0..=1.0).contains(&pu));
    }

    /// Inclusion–exclusion holds exactly on counts.
    #[test]
    fn inclusion_exclusion(e1 in arb_expr(), e2 in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e1);
        let g = build(&mut bdd, &e2);
        let u = bdd.or(f, g);
        let i = bdd.and(f, g);
        prop_assert_eq!(
            bdd.sat_count(u, NVARS) + bdd.sat_count(i, NVARS),
            bdd.sat_count(f, NVARS) + bdd.sat_count(g, NVARS)
        );
    }

    /// Existential quantification agrees with the or of the restrictions.
    #[test]
    fn exists_is_or_of_restrictions(e in arb_expr(), v in 0..NVARS) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        let lo = bdd.restrict(f, v, false);
        let hi = bdd.restrict(f, v, true);
        let expected = bdd.or(lo, hi);
        prop_assert_eq!(bdd.exists(f, &[v]), expected);
    }

    /// Extracted cubes really satisfy their function.
    #[test]
    fn cubes_are_witnesses(e in arb_expr()) {
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &e);
        match bdd.some_cube(f) {
            None => prop_assert!(f.is_false()),
            Some(cube) => {
                prop_assert!(bdd.eval(f, |v| cube.get(v).unwrap_or(false)));
            }
        }
    }

    /// int_range agrees with arithmetic on every point of an 8-bit space.
    #[test]
    fn range_oracle(lo in 0u128..256, hi in 0u128..256) {
        let mut bdd = Bdd::new();
        let f = bdd.int_range(0, 8, lo, hi);
        for x in 0..256u128 {
            let got = bdd.eval(f, |v| (x >> (7 - v)) & 1 == 1);
            prop_assert_eq!(got, lo <= x && x <= hi);
        }
    }

    /// Prefixes of the same value nest by length.
    #[test]
    fn prefixes_nest(value in any::<u32>(), l1 in 0u32..=32, l2 in 0u32..=32) {
        let mut bdd = Bdd::new();
        let (short, long) = (l1.min(l2), l1.max(l2));
        let ps = bdd.bits_prefix(0, 32, value as u128, short);
        let pl = bdd.bits_prefix(0, 32, value as u128, long);
        prop_assert!(bdd.subset(pl, ps));
    }
}

/// Remap an expression's variables to `offset + v * stride`, producing
/// wide sparse diagrams (leading and internal level skips).
fn remap(e: &Expr, offset: u32, stride: u32) -> Expr {
    match e {
        Expr::Var(v) => Expr::Var(offset + v * stride),
        Expr::Not(a) => Expr::Not(Box::new(remap(a, offset, stride))),
        Expr::And(a, b) => Expr::And(
            Box::new(remap(a, offset, stride)),
            Box::new(remap(b, offset, stride)),
        ),
        Expr::Or(a, b) => Expr::Or(
            Box::new(remap(a, offset, stride)),
            Box::new(remap(b, offset, stride)),
        ),
        Expr::Xor(a, b) => Expr::Xor(
            Box::new(remap(a, offset, stride)),
            Box::new(remap(b, offset, stride)),
        ),
    }
}

proptest! {
    /// `sat_count(f, n) / 2^n` and `probability(f)` are two independent
    /// implementations of the same measure; they must agree to f64
    /// precision on wide sparse domains — all the way to the `nvars = 127`
    /// boundary, with leading skips (lowest tested variable far above 0)
    /// and internal skips (stride > 1) exercised.
    #[test]
    fn sat_count_cross_checks_probability(
        e in arb_expr(),
        offset in 0u32..=121,
        stride in 1u32..=24,
    ) {
        // Keep the highest mapped variable inside the 127-var domain.
        let stride = stride.clamp(1, ((126 - offset) / (NVARS - 1)).max(1));
        let wide = remap(&e, offset, stride);
        let mut bdd = Bdd::new();
        let f = build(&mut bdd, &wide);
        let nvars = 127u32;
        let from_count = bdd.sat_count(f, nvars) as f64 / 2f64.powi(nvars as i32);
        let p = bdd.probability(f);
        // Both sides are dyadic rationals with few significant bits, so
        // they are exactly representable; allow a few ulps of slack for
        // the u128 -> f64 conversion anyway.
        let tol = 4.0 * f64::EPSILON * p.max(from_count).max(f64::MIN_POSITIVE);
        prop_assert!(
            (from_count - p).abs() <= tol,
            "count/2^127 = {from_count} vs probability = {p} for {wide:?}"
        );
    }
}

#[test]
fn sat_count_at_the_127_var_boundary() {
    let mut bdd = Bdd::new();
    assert_eq!(bdd.sat_count(Ref::TRUE, 127), 1u128 << 127);
    // A single top variable: half the 127-var space.
    let f = bdd.var(0);
    assert_eq!(bdd.sat_count(f, 127), 1u128 << 126);
    // Leading-skip diagram: the only tested variable is the very last
    // one, so 126 levels are skipped above the root.
    let g = bdd.var(126);
    assert_eq!(bdd.sat_count(g, 127), 1u128 << 126);
    assert_eq!(bdd.probability(g), 0.5);
    // Both extremes combined: var(0) AND var(126) quarters the space.
    let h = bdd.and(f, g);
    assert_eq!(bdd.sat_count(h, 127), 1u128 << 125);
    assert_eq!(bdd.probability(h), 0.25);
}
