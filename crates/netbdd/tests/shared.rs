//! Tests for the shared concurrent manager (`Bdd::new_shared`).
//!
//! Three contracts, in rising order of paranoia:
//!
//! 1. **Differential vs the counting oracle.** Worker threads building
//!    random expressions through handles of one shared arena must agree
//!    with a brute-force truth table on the model count of every
//!    function — and with the private sequential manager bit-for-bit,
//!    via the canonical [`PortableBdd`] export (the same equivalence the
//!    engine's CI gate relies on). One test per thread count so CI can
//!    run `shared_threads_2` / `shared_threads_8` explicitly.
//! 2. **Contention stress.** All workers hammer the *same* variable
//!    order and the same functions, so every `mk` races on the same
//!    shards; hash-consing must still hand every worker the identical
//!    canonical `Ref`s.
//! 3. **GC round-trip.** Collecting the arena from a set of roots and
//!    recomputing afterwards must reproduce byte-identical exports.

use netbdd::{Bdd, PortableBdd, Ref};
use proptest::prelude::*;
use proptest::TestCaseError;

/// A tiny expression language evaluated through the BDD engine and
/// through direct truth-table enumeration (the counting oracle).
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn exprs() -> impl Strategy<Value = Vec<Expr>> {
    proptest::collection::vec(arb_expr(), 1..9)
}

fn build(bdd: &mut Bdd, e: &Expr) -> Ref {
    match e {
        Expr::Var(v) => bdd.var(*v),
        Expr::Not(a) => {
            let a = build(bdd, a);
            bdd.not(a)
        }
        Expr::And(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.and(a, b)
        }
        Expr::Or(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.or(a, b)
        }
        Expr::Xor(a, b) => {
            let (a, b) = (build(bdd, a), build(bdd, b));
            bdd.xor(a, b)
        }
    }
}

fn eval(e: &Expr, assignment: u32) -> bool {
    match e {
        Expr::Var(v) => (assignment >> v) & 1 == 1,
        Expr::Not(a) => !eval(a, assignment),
        Expr::And(a, b) => eval(a, assignment) && eval(b, assignment),
        Expr::Or(a, b) => eval(a, assignment) || eval(b, assignment),
        Expr::Xor(a, b) => eval(a, assignment) != eval(b, assignment),
    }
}

fn truth_count(e: &Expr) -> u128 {
    (0..(1u32 << NVARS)).filter(|&a| eval(e, a)).count() as u128
}

/// Build `exprs` across `threads` workers sharing one arena (expression
/// `i` goes to worker `i % threads`) and return each function's
/// canonical export plus its model count, in input order.
fn run_shared(exprs: &[Expr], threads: usize) -> Vec<(PortableBdd, u128)> {
    let shared = Bdd::new_shared();
    let results: Vec<(usize, (PortableBdd, u128))> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let mut local = shared.handle();
                scope.spawn(move || {
                    exprs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % threads == tid)
                        .map(|(i, e)| {
                            let f = build(&mut local, e);
                            (i, (local.export(f), local.sat_count(f, NVARS)))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut out: Vec<Option<(PortableBdd, u128)>> = vec![None; exprs.len()];
    for (i, r) in results {
        out[i] = Some(r);
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// The shared backend at `threads` workers agrees with the sequential
/// private manager (byte-identical exports) and the counting oracle.
fn check_differential(exprs: &[Expr], threads: usize) -> Result<(), TestCaseError> {
    let mut seq = Bdd::new();
    let expected: Vec<(PortableBdd, u128)> = exprs
        .iter()
        .map(|e| {
            let f = build(&mut seq, e);
            (seq.export(f), truth_count(e))
        })
        .collect();
    let got = run_shared(exprs, threads);
    for (i, ((gp, gc), (ep, ec))) in got.iter().zip(&expected).enumerate() {
        prop_assert_eq!(gc, ec, "model count diverged from oracle at expr {}", i);
        prop_assert_eq!(gp, ep, "export diverged from sequential at expr {}", i);
    }
    Ok(())
}

proptest! {
    #[test]
    fn shared_threads_1_matches_oracle(e in exprs()) {
        check_differential(&e, 1)?;
    }

    #[test]
    fn shared_threads_2_matches_oracle(e in exprs()) {
        check_differential(&e, 2)?;
    }

    #[test]
    fn shared_threads_4_matches_oracle(e in exprs()) {
        check_differential(&e, 4)?;
    }

    #[test]
    fn shared_threads_8_matches_oracle(e in exprs()) {
        check_differential(&e, 8)?;
    }
}

/// Contention stress: every worker builds the *same* function ladder in
/// the same variable order, so all of them race on the same unique-table
/// shards at once. Hash-consing must hand every worker the identical
/// canonical `Ref` for every rung.
#[test]
fn contention_same_order_yields_canonical_refs() {
    const WORKERS: usize = 8;
    const RUNGS: u32 = 200;
    let shared = Bdd::new_shared();
    let ladders: Vec<Vec<Ref>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let mut local = shared.handle();
                scope.spawn(move || {
                    let mut refs = Vec::with_capacity(RUNGS as usize);
                    let mut acc = local.var(0);
                    for i in 1..=RUNGS {
                        let v = local.var(i % 24);
                        // Alternate ops so rungs hit both mk and the
                        // shared computed cache.
                        acc = if i % 3 == 0 {
                            local.xor(acc, v)
                        } else if i % 3 == 1 {
                            local.or(acc, v)
                        } else {
                            let n = local.not(v);
                            local.and(acc, n)
                        };
                        refs.push(acc);
                    }
                    refs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (w, ladder) in ladders.iter().enumerate() {
        assert_eq!(
            ladder, &ladders[0],
            "worker {w} saw non-canonical refs under contention"
        );
    }
}

/// GC-then-recompute bit-identity: collect the shared arena down to a
/// few roots, then rebuild every function (dropped ones included) in the
/// compacted arena — every export must be byte-identical to the
/// pre-collection snapshot, and the collection itself must shrink the
/// arena.
#[test]
fn gc_then_recompute_is_bit_identical() {
    let mut bdd = Bdd::new_shared();
    let build_all = |bdd: &mut Bdd| -> Vec<Ref> {
        (0..24u32)
            .map(|i| {
                let a = bdd.var(i % 12);
                let b = bdd.var((i + 5) % 12);
                let c = bdd.var((i + 9) % 12);
                let ab = bdd.and(a, b);
                let abc = bdd.xor(ab, c);
                bdd.or(abc, a)
            })
            .collect()
    };
    let funcs = build_all(&mut bdd);
    let snapshots: Vec<PortableBdd> = funcs.iter().map(|&f| bdd.export(f)).collect();

    // Keep only every fourth function live across the collection.
    let roots: Vec<Ref> = funcs.iter().copied().step_by(4).collect();
    let (reloc, stats) = bdd.collect(&roots);
    assert!(
        stats.nodes_after < stats.nodes_before,
        "dropping 3/4 of the roots must reclaim nodes ({} -> {})",
        stats.nodes_before,
        stats.nodes_after
    );
    for (i, &r) in roots.iter().enumerate() {
        assert_eq!(
            bdd.export(reloc.relocate(r)),
            snapshots[i * 4],
            "surviving root {i} changed across the collection"
        );
    }

    // Recompute everything in the compacted arena: canonical exports
    // must match the pre-GC snapshots bit for bit.
    let again = build_all(&mut bdd);
    for (i, &f) in again.iter().enumerate() {
        assert_eq!(
            bdd.export(f),
            snapshots[i],
            "function {i} diverged when recomputed after GC"
        );
    }
}
