//! Differential tests against the `oracle` crate: every algebra and
//! quantification operation of the BDD engine is replayed on an
//! extensional `PacketSet` over the same 6-bit toy space, and the two
//! must agree packet by packet. Unlike `proptests.rs` (which checks the
//! engine against ad-hoc truth tables), the reference here is the shared
//! oracle subsystem the whole workspace is judged by.

use netbdd::{Bdd, Ref};
use oracle::{PacketSet, ToySpace};
use proptest::prelude::*;

/// 4-bit dst + 1-bit src + 1-bit proto = 6 variables, 64 packets.
fn space() -> ToySpace {
    ToySpace::new(4, 1, 1)
}

const NVARS: u32 = 6;

/// Expression language covering every set operation the engine exports.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Diff(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

/// Build both representations in lockstep, op by op, so a divergence
/// pinpoints the engine operation that introduced it.
fn build(bdd: &mut Bdd, s: &ToySpace, e: &Expr) -> (Ref, PacketSet) {
    match e {
        Expr::Var(v) => (bdd.var(*v), PacketSet::literal(s, *v, true)),
        Expr::Not(a) => {
            let (fa, sa) = build(bdd, s, a);
            (bdd.not(fa), sa.not(s))
        }
        Expr::And(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.and(fa, fb), sa.and(&sb))
        }
        Expr::Or(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.or(fa, fb), sa.or(&sb))
        }
        Expr::Diff(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.diff(fa, fb), sa.diff(&sb))
        }
        Expr::Xor(a, b) => {
            let ((fa, sa), (fb, sb)) = (build(bdd, s, a), build(bdd, s, b));
            (bdd.xor(fa, fb), sa.xor(&sb))
        }
    }
}

/// Symbolic set and oracle set agree on membership of every packet.
fn assert_same_set(
    bdd: &Bdd,
    s: &ToySpace,
    f: Ref,
    set: &PacketSet,
) -> Result<(), proptest::TestCaseError> {
    for p in s.packets() {
        prop_assert_eq!(
            bdd.eval(f, |v| s.bit(p, v)),
            set.contains(p),
            "packet {:#x} diverges",
            p
        );
    }
    Ok(())
}

proptest! {
    /// The whole algebra — and/or/not/diff/xor in arbitrary composition —
    /// produces exactly the oracle's packet set.
    #[test]
    fn algebra_matches_oracle(e in arb_expr()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        assert_same_set(&bdd, &s, f, &set)?;
    }

    /// Model counting and probability agree with oracle cardinality, and
    /// `sat_count(f, n) / 2^n == probability(f)` ties the two numeric
    /// views of the engine together.
    #[test]
    fn counting_matches_oracle(e in arb_expr()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        prop_assert_eq!(bdd.sat_count(f, NVARS), set.sat_count());
        let by_count = bdd.sat_count(f, NVARS) as f64 / (1u64 << NVARS) as f64;
        prop_assert!((bdd.probability(f) - by_count).abs() < 1e-12);
        prop_assert!((bdd.probability(f) - set.probability(&s)).abs() < 1e-12);
    }

    /// Cofactor restriction agrees with the oracle's enumeration reading
    /// `{p : f contains p[var := value]}`.
    #[test]
    fn restrict_matches_oracle(e in arb_expr(), v in 0..NVARS, val in any::<bool>()) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let rf = bdd.restrict(f, v, val);
        let rset = set.restrict(&s, v, val);
        assert_same_set(&bdd, &s, rf, &rset)?;
    }

    /// Existential quantification over a variable set agrees with the
    /// oracle's restrict-and-or expansion, one variable at a time. The
    /// engine wants the variable set strictly ascending, so it is drawn
    /// as a nonzero bitmask.
    #[test]
    fn exists_matches_oracle(e in arb_expr(), mask in 1u32..(1 << NVARS)) {
        let vars: Vec<u32> = (0..NVARS).filter(|v| mask & (1 << v) != 0).collect();
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let ef = bdd.exists(f, &vars);
        let eset = vars.iter().fold(set, |acc, &v| acc.exists(&s, v));
        assert_same_set(&bdd, &s, ef, &eset)?;
    }

    /// Universal quantification likewise, against restrict-and-and.
    #[test]
    fn forall_matches_oracle(e in arb_expr(), mask in 1u32..(1 << NVARS)) {
        let vars: Vec<u32> = (0..NVARS).filter(|v| mask & (1 << v) != 0).collect();
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let af = bdd.forall(f, &vars);
        let aset = vars.iter().fold(set, |acc, &v| acc.forall(&s, v));
        assert_same_set(&bdd, &s, af, &aset)?;
    }

    /// Quantifier duality holds on both sides: ∀v.f = ¬∃v.¬f.
    #[test]
    fn forall_is_dual_of_exists(e in arb_expr(), v in 0..NVARS) {
        let s = space();
        let mut bdd = Bdd::new();
        let (f, set) = build(&mut bdd, &s, &e);
        let nf = bdd.not(f);
        let env = bdd.exists(nf, &[v]);
        let dual = bdd.not(env);
        prop_assert_eq!(bdd.forall(f, &[v]), dual);
        prop_assert_eq!(set.forall(&s, v), set.not(&s).exists(&s, v).not(&s));
    }
}
