//! Failure-scenario differential tests for the incremental
//! [`RoutingEngine`]: validation error paths mirroring `routing::delta`'s
//! `RibError` discipline, plus the bit-identity gate — every random
//! failure/recovery sequence re-converged incrementally must produce
//! exactly the FIBs a from-scratch rebuild (and the message-passing eBGP
//! simulator) computes for the degraded topology.

use netmodel::provenance::Construct;
use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::{Network, Prefix};
use proptest::prelude::*;
use routing::{
    try_simulate, BgpConfig, Origination, RibBuilder, RibError, RoutingEngine, Scope, StaticRoute,
    StaticTarget, TopologyDelta,
};

/// A two-tier mini-Clos: 2 ToRs, 2 aggs, 2 spines, full bipartite
/// wiring per tier boundary. Exercises anycast (two spine defaults),
/// scope (`MinTier` WAN route the ToRs refuse), blocking (agg1 refuses
/// the WAN route), and — when `with_statics` — the admin-distance merge
/// (Connected, StaticDefault, null route, degenerate empty ECMP set).
fn mini_builder(with_statics: bool) -> RibBuilder {
    let mut t = Topology::new();
    let tor0 = t.add_device("tor0", Role::Tor);
    let tor1 = t.add_device("tor1", Role::Tor);
    let agg0 = t.add_device("agg0", Role::Aggregation);
    let agg1 = t.add_device("agg1", Role::Aggregation);
    let spine0 = t.add_device("spine0", Role::Spine);
    let spine1 = t.add_device("spine1", Role::Spine);
    let h0 = t.add_iface(tor0, "hosts", IfaceKind::Host);
    let h1 = t.add_iface(tor1, "hosts", IfaceKind::Host);
    let wan_up = t.add_iface(spine0, "internet", IfaceKind::External);
    let (t0a0, _) = t.add_link(tor0, agg0);
    let (t0a1, _) = t.add_link(tor0, agg1);
    t.add_link(tor1, agg0);
    t.add_link(tor1, agg1);
    t.add_link(agg0, spine0);
    t.add_link(agg0, spine1);
    t.add_link(agg1, spine0);
    t.add_link(agg1, spine1);

    let mut rb = RibBuilder::new(t);
    for (d, tier) in [
        (tor0, 0u8),
        (tor1, 0),
        (agg0, 1),
        (agg1, 1),
        (spine0, 2),
        (spine1, 2),
    ] {
        rb.set_tier(d, tier);
        rb.set_asn(d, 65000 + d.0);
    }
    rb.originate(Origination::new(
        tor0,
        "10.0.0.0/24".parse().unwrap(),
        RouteClass::HostSubnet,
        Some(h0),
        Scope::All,
    ));
    rb.originate(Origination::new(
        tor1,
        "10.0.1.0/24".parse().unwrap(),
        RouteClass::HostSubnet,
        Some(h1),
        Scope::All,
    ));
    // Anycast default from both spines (spine1 advertises but
    // blackholes: deliver = None).
    rb.originate(Origination::new(
        spine0,
        Prefix::v4_default(),
        RouteClass::BgpDefault,
        Some(wan_up),
        Scope::All,
    ));
    rb.originate(Origination::new(
        spine1,
        Prefix::v4_default(),
        RouteClass::BgpDefault,
        None,
        Scope::All,
    ));
    // Scoped WAN route the ToRs never install, blocked on agg1.
    let mut wan = Origination::new(
        spine0,
        "52.0.0.0/16".parse().unwrap(),
        RouteClass::Wan,
        Some(wan_up),
        Scope::MinTier(1),
    );
    wan.blocked.push(agg1);
    rb.originate(wan);

    if with_statics {
        // Static default on tor0, ECMP north over both uplinks; its
        // next-hop set shrinks when an uplink dies.
        rb.add_static(StaticRoute {
            device: tor0,
            prefix: Prefix::v4_default(),
            target: StaticTarget::Ifaces(vec![t0a0, t0a1]),
            class: RouteClass::StaticDefault,
        });
        // Connected route over the tor0-agg0 link (admin distance 0).
        rb.add_static(StaticRoute {
            device: tor0,
            prefix: "192.168.0.0/31".parse().unwrap(),
            target: StaticTarget::Ifaces(vec![t0a0]),
            class: RouteClass::Connected,
        });
        // Null route (Figure 1's B2) and a degenerate empty ECMP set,
        // both of which must survive any failure state verbatim.
        rb.add_static(StaticRoute {
            device: agg0,
            prefix: "10.9.0.0/16".parse().unwrap(),
            target: StaticTarget::Null,
            class: RouteClass::Other,
        });
        rb.add_static(StaticRoute {
            device: agg1,
            prefix: "10.8.0.0/16".parse().unwrap(),
            target: StaticTarget::Ifaces(Vec::new()),
            class: RouteClass::Other,
        });
    }
    rb
}

fn mini_engine(with_statics: bool) -> (RoutingEngine, Network) {
    mini_builder(with_statics).into_engine().unwrap()
}

fn assert_identical(got: &Network, want: &Network, what: &str) {
    for (d, dev) in want.topology().devices() {
        assert_eq!(
            got.device_rules(d),
            want.device_rules(d),
            "{what}: FIB of {} diverged",
            dev.name
        );
    }
}

#[test]
fn engine_healthy_network_matches_try_build() {
    let (_, net) = mini_engine(true);
    let batch = mini_builder(true).try_build().unwrap();
    assert_identical(&net, &batch, "healthy state");
}

// ---- satellite: validation error paths (RibError discipline) ----

#[test]
fn link_down_unknown_device_is_rejected() {
    let (mut engine, mut net) = mini_engine(true);
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::LinkDown {
                a: DeviceId(99),
                b: DeviceId(0),
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, RibError::UnknownDevice { device, .. } if device == DeviceId(99)),
        "got {err:?}"
    );
    assert!(err.to_string().contains("topology delta"));
}

#[test]
fn link_down_unlinked_pair_is_rejected() {
    let (mut engine, mut net) = mini_engine(true);
    // tor0 and tor1 are not adjacent.
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::LinkDown {
                a: DeviceId(0),
                b: DeviceId(1),
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        RibError::UnknownLink {
            a: DeviceId(0),
            b: DeviceId(1)
        }
    );
}

#[test]
fn double_link_down_is_rejected() {
    let (mut engine, mut net) = mini_engine(true);
    let d = TopologyDelta::LinkDown {
        a: DeviceId(0),
        b: DeviceId(2),
    };
    engine.apply(&mut net, &d).unwrap();
    let err = engine.apply(&mut net, &d).unwrap_err();
    assert_eq!(
        err,
        RibError::LinkAlreadyDown {
            a: DeviceId(0),
            b: DeviceId(2)
        }
    );
}

#[test]
fn link_up_of_live_link_is_rejected() {
    let (mut engine, mut net) = mini_engine(true);
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::LinkUp {
                a: DeviceId(0),
                b: DeviceId(2),
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        RibError::LinkNotDown {
            a: DeviceId(0),
            b: DeviceId(2)
        }
    );
}

#[test]
fn device_state_mismatches_are_rejected() {
    let (mut engine, mut net) = mini_engine(true);
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::DeviceUp {
                device: DeviceId(4),
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        RibError::DeviceNotDown {
            device: DeviceId(4)
        }
    );
    engine
        .apply(
            &mut net,
            &TopologyDelta::DeviceDown {
                device: DeviceId(4),
            },
        )
        .unwrap();
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::DeviceDown {
                device: DeviceId(4),
            },
        )
        .unwrap_err();
    assert_eq!(
        err,
        RibError::DeviceAlreadyDown {
            device: DeviceId(4)
        }
    );
    let err = engine
        .apply(
            &mut net,
            &TopologyDelta::DeviceDown {
                device: DeviceId(99),
            },
        )
        .unwrap_err();
    assert!(matches!(err, RibError::UnknownDevice { .. }), "got {err:?}");
}

#[test]
fn rejected_deltas_leave_state_untouched() {
    let (mut engine, mut net) = mini_engine(true);
    let baseline = engine.full_rebuild().unwrap();
    for bad in [
        TopologyDelta::LinkDown {
            a: DeviceId(0),
            b: DeviceId(1),
        },
        TopologyDelta::LinkUp {
            a: DeviceId(0),
            b: DeviceId(2),
        },
        TopologyDelta::DeviceUp {
            device: DeviceId(3),
        },
    ] {
        engine.apply(&mut net, &bad).unwrap_err();
    }
    assert_identical(&net, &baseline, "after rejected deltas");
}

// ---- flap determinism ----

#[test]
fn link_flap_restores_baseline_bit_identically() {
    let (mut engine, mut net) = mini_engine(true);
    let healthy = mini_builder(true).try_build().unwrap();
    let down = TopologyDelta::LinkDown {
        a: DeviceId(0),
        b: DeviceId(2),
    };
    let up = TopologyDelta::LinkUp {
        a: DeviceId(0),
        b: DeviceId(2),
    };
    let diff = engine.apply(&mut net, &down).unwrap();
    assert!(!diff.is_empty(), "a live uplink failure must edit the FIB");
    assert_identical(&net, &engine.full_rebuild().unwrap(), "degraded");
    let diff = engine.apply(&mut net, &up).unwrap();
    assert!(!diff.is_empty());
    assert_identical(&net, &healthy, "after recovery");
}

#[test]
fn device_flap_restores_baseline_bit_identically() {
    let (mut engine, mut net) = mini_engine(true);
    let healthy = mini_builder(true).try_build().unwrap();
    for dev in [2u32, 4] {
        let device = DeviceId(dev);
        let diff = engine
            .apply(&mut net, &TopologyDelta::DeviceDown { device })
            .unwrap();
        assert!(diff.devices().contains(&device));
        assert_identical(&net, &engine.full_rebuild().unwrap(), "device down");
        engine
            .apply(&mut net, &TopologyDelta::DeviceUp { device })
            .unwrap();
        assert_identical(&net, &healthy, "after device recovery");
    }
}

// ---- provenance attribution ----

#[test]
fn healthy_provenance_attributes_every_entry() {
    let (engine, net) = mini_engine(true);
    let db = engine.config_db();
    // Every engine-managed FIB rule is attributed to ≥1 construct.
    for (d, _) in net.topology().devices() {
        for r in net.device_rules(d) {
            let prefix = r.matches.dst.unwrap();
            let via = db
                .attribution(d, prefix)
                .unwrap_or_else(|| panic!("no attribution for {prefix} on {d:?}"));
            assert!(!via.is_empty(), "{prefix} on {d:?} attributed to nothing");
            // And only to constructs of the live universe.
            for c in via {
                assert!(db.constructs.contains(c), "{c} not in the universe");
            }
        }
    }
    // Statics win their keys: tor0's default is attributed to the
    // static, not to the anycast BGP default behind it.
    let tor0 = DeviceId(0);
    let via = db.attribution(tor0, Prefix::v4_default()).unwrap();
    assert_eq!(
        via.iter().collect::<Vec<_>>(),
        vec![&Construct::Static {
            device: tor0,
            prefix: Prefix::v4_default(),
        }]
    );
    // A remote host route's provenance reaches back to the origination.
    let p1: Prefix = "10.0.1.0/24".parse().unwrap();
    let via = db.attribution(tor0, p1).unwrap();
    assert!(via.contains(&Construct::Origination {
        device: DeviceId(1),
        prefix: p1,
    }));
    // tor0 reaches tor1's prefix over both aggs: both first-hop
    // sessions (and both second-hop sessions) are on the ECMP paths.
    for agg in [DeviceId(2), DeviceId(3)] {
        assert!(via.contains(&Construct::session(tor0, agg)));
        assert!(via.contains(&Construct::session(agg, DeviceId(1))));
    }
}

#[test]
fn provenance_follows_a_link_flap() {
    let (mut engine, mut net) = mini_engine(true);
    let tor0 = DeviceId(0);
    let (agg0, agg1) = (DeviceId(2), DeviceId(3));
    let p1: Prefix = "10.0.1.0/24".parse().unwrap();
    let healthy = engine.config_db();
    engine
        .apply(&mut net, &TopologyDelta::LinkDown { a: tor0, b: agg0 })
        .unwrap();
    let degraded = engine.config_db();
    // The dead session leaves the universe and tor0's path to tor1's
    // prefix narrows to the agg1 leg only.
    assert!(!degraded
        .constructs
        .contains(&Construct::session(tor0, agg0)));
    let via = degraded.attribution(tor0, p1).unwrap();
    assert!(!via.contains(&Construct::session(tor0, agg0)));
    assert!(via.contains(&Construct::session(tor0, agg1)));
    // Recovery restores the healthy attribution database exactly.
    engine
        .apply(&mut net, &TopologyDelta::LinkUp { a: tor0, b: agg0 })
        .unwrap();
    assert_eq!(engine.config_db(), healthy);
}

// ---- differential proptest: random sequences ----

/// Interpret a `(kind, pick)` pair against the engine's current failure
/// state, returning a delta that is valid by construction (or `None`
/// when the kind has no candidates, e.g. no link is down).
fn interpret(
    engine: &RoutingEngine,
    kind: u8,
    pick: u16,
    down_links: &mut [bool],
    down_devs: &mut [bool],
) -> Option<TopologyDelta> {
    let eps = engine.link_endpoints();
    match kind % 4 {
        0 => {
            let cands: Vec<usize> = (0..eps.len()).filter(|&l| !down_links[l]).collect();
            let l = *cands.get(pick as usize % cands.len().max(1))?;
            down_links[l] = true;
            Some(TopologyDelta::LinkDown {
                a: eps[l].0,
                b: eps[l].1,
            })
        }
        1 => {
            let cands: Vec<usize> = (0..eps.len()).filter(|&l| down_links[l]).collect();
            if cands.is_empty() {
                return None;
            }
            let l = cands[pick as usize % cands.len()];
            down_links[l] = false;
            Some(TopologyDelta::LinkUp {
                a: eps[l].0,
                b: eps[l].1,
            })
        }
        2 => {
            let cands: Vec<u32> = (0..down_devs.len() as u32)
                .filter(|&d| !down_devs[d as usize])
                .collect();
            if cands.is_empty() {
                return None;
            }
            let d = cands[pick as usize % cands.len()];
            down_devs[d as usize] = true;
            Some(TopologyDelta::DeviceDown {
                device: DeviceId(d),
            })
        }
        _ => {
            let cands: Vec<u32> = (0..down_devs.len() as u32)
                .filter(|&d| down_devs[d as usize])
                .collect();
            if cands.is_empty() {
                return None;
            }
            let d = cands[pick as usize % cands.len()];
            down_devs[d as usize] = false;
            Some(TopologyDelta::DeviceUp {
                device: DeviceId(d),
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole gate: after EVERY delta in a random
    /// failure/recovery sequence, the incrementally re-converged FIBs
    /// are bit-identical (same rules, same order) to a from-scratch
    /// rebuild of the degraded control plane.
    #[test]
    fn incremental_matches_full_rebuild(
        ops in proptest::collection::vec((0u8..4, 0u16..1024), 1..12),
    ) {
        let (mut engine, mut net) = mini_engine(true);
        let mut down_links = vec![false; engine.link_count()];
        let mut down_devs = vec![false; net.topology().device_count()];
        for (kind, pick) in ops {
            let Some(delta) =
                interpret(&engine, kind, pick, &mut down_links, &mut down_devs)
            else {
                continue;
            };
            engine.apply(&mut net, &delta).unwrap();
            let rebuilt = engine.full_rebuild().unwrap();
            for d in 0..down_devs.len() as u32 {
                prop_assert_eq!(
                    net.device_rules(DeviceId(d)),
                    rebuilt.device_rules(DeviceId(d)),
                    "after {:?}: FIB of device {} diverged",
                    delta,
                    d
                );
            }
            // Same gate for provenance: the attribution database read
            // off the incrementally re-converged engine is bit-identical
            // to one built from scratch on the degraded topology.
            let (scratch, _) =
                engine.degraded_builder().into_engine().unwrap();
            prop_assert_eq!(
                engine.config_db(),
                scratch.config_db(),
                "after {:?}: provenance diverged",
                delta
            );
        }
    }

    /// Cross-check against the message-passing eBGP simulator: on a
    /// statics-free fabric, the incremental FIBs' ECMP sets agree with
    /// `try_simulate` of the degraded topology after every delta.
    #[test]
    fn incremental_matches_bgp_simulation(
        ops in proptest::collection::vec((0u8..4, 0u16..1024), 1..10),
    ) {
        let (mut engine, mut net) = mini_engine(false);
        let mut down_links = vec![false; engine.link_count()];
        let mut down_devs = vec![false; net.topology().device_count()];
        for (kind, pick) in ops {
            let Some(delta) =
                interpret(&engine, kind, pick, &mut down_links, &mut down_devs)
            else {
                continue;
            };
            engine.apply(&mut net, &delta).unwrap();
            let topo = engine.degraded_topology();
            let origs = engine.live_originations();
            let ribs = try_simulate(
                &topo,
                engine.asns(),
                engine.tiers(),
                &origs,
                &BgpConfig::default(),
            )
            .unwrap();
            for d in 0..down_devs.len() as u32 {
                let device = DeviceId(d);
                let mut built: Vec<(Prefix, Vec<IfaceId>)> = if down_devs[d as usize] {
                    // A downed device keeps no FIB state.
                    prop_assert!(net.device_rules(device).is_empty());
                    continue;
                } else {
                    net.device_rules(device)
                        .iter()
                        .map(|r| {
                            let mut outs = r.action.out_ifaces().to_vec();
                            outs.sort();
                            (r.matches.dst.unwrap(), outs)
                        })
                        .collect()
                };
                built.sort();
                let mut simulated: Vec<(Prefix, Vec<IfaceId>)> = Vec::new();
                for (prefix, route) in &ribs.ribs[d as usize] {
                    let outs = if route.next_hops.is_empty() {
                        let mut del: Vec<IfaceId> = origs
                            .iter()
                            .filter(|o| o.device == device && o.prefix == *prefix)
                            .filter_map(|o| o.deliver)
                            .collect();
                        del.sort();
                        del
                    } else {
                        let mut n = route.next_hops.clone();
                        n.sort();
                        n
                    };
                    if outs.is_empty() {
                        // Originator that advertises but blackholes:
                        // the FIB compiles no rule for it.
                        continue;
                    }
                    simulated.push((*prefix, outs));
                }
                simulated.sort();
                prop_assert_eq!(
                    built,
                    simulated,
                    "after {:?}: device {} disagrees with the simulator",
                    delta,
                    d
                );
            }
        }
    }
}
