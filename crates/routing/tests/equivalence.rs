//! The substitution-soundness test: the BFS-based [`RibBuilder`] and the
//! message-passing eBGP simulator must produce identical FIBs on the
//! fabrics this project generates. This is the checkable form of the
//! claim in DESIGN.md that shortest-path-with-ECMP is what eBGP with
//! per-tier ASNs and allow-as-in converges to on a Clos.

use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::Prefix;
use routing::{simulate, BgpConfig, Origination, RibBuilder, Scope};

/// A miniature regional fabric: 2 DCs × (2 ToR + 2 agg) + 2 spines each,
/// 2 hubs, 1 WAN router; host prefixes everywhere, scoped WAN prefixes.
struct Fabric {
    topo: Topology,
    asns: Vec<u32>,
    tiers: Vec<u8>,
    origs: Vec<Origination>,
}

fn build_fabric() -> Fabric {
    let mut t = Topology::new();
    let mut asns = Vec::new();
    let mut tiers = Vec::new();
    let add = |t: &mut Topology,
               name: String,
               role: Role,
               asn: u32,
               tier: u8,
               asns: &mut Vec<u32>,
               tiers: &mut Vec<u8>| {
        let d = t.add_device(name, role);
        asns.push(asn);
        tiers.push(tier);
        d
    };

    let mut tors = Vec::new();
    let mut aggs = Vec::new();
    let mut spines = Vec::new();
    for dc in 0..2u32 {
        for i in 0..2u32 {
            tors.push(add(
                &mut t,
                format!("dc{dc}-tor{i}"),
                Role::Tor,
                65000 + dc * 10 + i,
                0,
                &mut asns,
                &mut tiers,
            ));
        }
        for i in 0..2u32 {
            aggs.push(add(
                &mut t,
                format!("dc{dc}-agg{i}"),
                Role::Aggregation,
                64800 + dc,
                1,
                &mut asns,
                &mut tiers,
            ));
        }
        for i in 0..2u32 {
            spines.push(add(
                &mut t,
                format!("dc{dc}-spine{i}"),
                Role::Spine,
                64700,
                2,
                &mut asns,
                &mut tiers,
            ));
        }
    }
    let hubs: Vec<DeviceId> = (0..2)
        .map(|i| {
            add(
                &mut t,
                format!("hub{i}"),
                Role::RegionalHub,
                64600,
                3,
                &mut asns,
                &mut tiers,
            )
        })
        .collect();
    let wan = add(
        &mut t,
        "wan0".into(),
        Role::Wan,
        8075,
        4,
        &mut asns,
        &mut tiers,
    );

    let tor_hosts: Vec<IfaceId> = tors
        .iter()
        .map(|&d| t.add_iface(d, "hosts", IfaceKind::Host))
        .collect();
    let wan_up = t.add_iface(wan, "internet", IfaceKind::External);

    // Wiring: tor↔agg (same dc), agg↔spine (same dc), spine↔hub, hub↔wan.
    for dc in 0..2usize {
        for ti in 0..2 {
            for ai in 0..2 {
                t.add_link(tors[dc * 2 + ti], aggs[dc * 2 + ai]);
            }
        }
        for ai in 0..2 {
            for si in 0..2 {
                t.add_link(aggs[dc * 2 + ai], spines[dc * 2 + si]);
            }
        }
        for si in 0..2 {
            for &h in &hubs {
                t.add_link(spines[dc * 2 + si], h);
            }
        }
    }
    for &h in &hubs {
        t.add_link(h, wan);
    }

    // Originations: one /24 per ToR (Scope::All), two scoped WAN routes.
    let mut origs = Vec::new();
    for (i, &tor) in tors.iter().enumerate() {
        let p = Prefix::v4(u32::from_be_bytes([10, 0, i as u8, 0]), 24);
        origs.push(Origination::new(
            tor,
            p,
            RouteClass::HostSubnet,
            Some(tor_hosts[i]),
            Scope::All,
        ));
    }
    for w in 0..2u8 {
        let p = Prefix::v4(u32::from_be_bytes([52, w, 0, 0]), 16);
        origs.push(Origination::new(
            wan,
            p,
            RouteClass::Wan,
            Some(wan_up),
            Scope::MinTier(2),
        ));
    }
    Fabric {
        topo: t,
        asns,
        tiers,
        origs,
    }
}

#[test]
fn bfs_builder_equals_bgp_simulation() {
    let f = build_fabric();

    // Engine 1: the BFS-based builder.
    let mut rb = RibBuilder::new(f.topo.clone());
    for (i, asn) in f.asns.iter().enumerate() {
        rb.set_asn(DeviceId(i as u32), *asn);
        rb.set_tier(DeviceId(i as u32), f.tiers[i]);
    }
    for o in &f.origs {
        rb.originate(o.clone());
    }
    let net = rb.build();

    // Engine 2: message-passing eBGP.
    let ribs = simulate(&f.topo, &f.asns, &f.tiers, &f.origs, &BgpConfig::default());

    // Every BGP-derived FIB rule must agree: same prefixes present, same
    // ECMP next-hop sets.
    let mut compared = 0;
    for (device, _) in f.topo.devices() {
        // Collect builder routes (prefix → sorted out ifaces).
        let mut built: Vec<(Prefix, Vec<IfaceId>)> = net
            .device_rules(device)
            .iter()
            .map(|r| {
                let mut outs = r.action.out_ifaces().to_vec();
                outs.sort();
                (r.matches.dst.unwrap(), outs)
            })
            .collect();
        built.sort();
        // Collect simulator routes; originators deliver locally, which
        // the simulator models as empty next-hops — map through the
        // origination's deliver iface for comparison.
        let mut simulated: Vec<(Prefix, Vec<IfaceId>)> = Vec::new();
        for (prefix, route) in &ribs.ribs[device.0 as usize] {
            let outs = if route.next_hops.is_empty() {
                let mut d: Vec<IfaceId> = f
                    .origs
                    .iter()
                    .filter(|o| o.device == device && o.prefix == *prefix)
                    .filter_map(|o| o.deliver)
                    .collect();
                d.sort();
                d
            } else {
                let mut n = route.next_hops.clone();
                n.sort();
                n
            };
            simulated.push((*prefix, outs));
        }
        simulated.sort();
        assert_eq!(built, simulated, "{} disagrees", f.topo.device(device).name);
        compared += built.len();
    }
    assert!(
        compared > 50,
        "the comparison must actually cover routes ({compared})"
    );
}

#[test]
fn convergence_is_fast_on_the_fabric() {
    let f = build_fabric();
    let ribs = simulate(&f.topo, &f.asns, &f.tiers, &f.origs, &BgpConfig::default());
    // Diameter of the fabric is 6 (tor→agg→spine→hub→spine→agg→tor);
    // synchronous BGP needs diameter+1-ish rounds.
    assert!(ribs.rounds <= 8, "rounds = {}", ribs.rounds);
}

#[test]
fn cross_dc_routes_depend_on_allow_as_in() {
    let f = build_fabric();
    let no_allow = simulate(
        &f.topo,
        &f.asns,
        &f.tiers,
        &f.origs,
        &BgpConfig {
            allow_as_in: false,
            ..BgpConfig::default()
        },
    );
    let with_allow = simulate(&f.topo, &f.asns, &f.tiers, &f.origs, &BgpConfig::default());
    // dc0-tor0 must reach dc1's prefixes with allow-as-in...
    let dc1_prefix = Prefix::v4(u32::from_be_bytes([10, 0, 2, 0]), 24);
    let tor0 = f.topo.device_by_name("dc0-tor0").unwrap();
    assert!(with_allow.route(tor0, &dc1_prefix).is_some());
    // ...and must NOT without it: the cross-DC path re-enters ASN 64700
    // (shared by every spine) at the remote spine, so plain loop
    // prevention rejects it.
    assert!(no_allow.route(tor0, &dc1_prefix).is_none());
}
