//! RIB computation and FIB compilation.

use std::collections::{BTreeMap, VecDeque};

use netmodel::rule::{Action, RouteClass, Rule};
use netmodel::topology::{DeviceId, IfaceId, Topology};
use netmodel::{Network, Prefix};

/// Which devices accept (install and re-advertise) a BGP route.
///
/// `MinTier` is the stand-in for the production network's route-leak
/// policy: WAN routes are advertised to the regional hub and spine tiers
/// but never leaked into pods (§7.2, "wide-area routes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Every device installs the route.
    All,
    /// Only devices whose tier is at least this value install the route.
    MinTier(u8),
}

impl Scope {
    fn accepts(self, tier: u8) -> bool {
        match self {
            Scope::All => true,
            Scope::MinTier(t) => tier >= t,
        }
    }
}

/// A prefix originated into BGP at a device (host subnet, loopback,
/// redistributed WAN route, or the BGP default from the WAN).
#[derive(Clone, Debug)]
pub struct Origination {
    pub device: DeviceId,
    pub prefix: Prefix,
    /// Route class stamped onto every FIB rule this origination creates.
    pub class: RouteClass,
    /// Where the originator itself sends matching packets: a host,
    /// loopback, or external interface. `None` means the originator
    /// advertises the prefix but blackholes matching traffic locally
    /// (used to model redistribution anomalies).
    pub deliver: Option<IfaceId>,
    pub scope: Scope,
    /// Devices that refuse this route: they neither install nor
    /// re-advertise it. Models propagation anomalies like Figure 1's B2,
    /// whose null-routed static default stops it from passing the BGP
    /// default on to the spines.
    pub blocked: Vec<DeviceId>,
}

impl Origination {
    /// An origination with no blocked devices.
    pub fn new(
        device: DeviceId,
        prefix: Prefix,
        class: RouteClass,
        deliver: Option<IfaceId>,
        scope: Scope,
    ) -> Origination {
        Origination {
            device,
            prefix,
            class,
            deliver,
            scope,
            blocked: Vec::new(),
        }
    }
}

/// Target of a statically configured route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticTarget {
    /// Forward out these interfaces (ECMP if several).
    Ifaces(Vec<IfaceId>),
    /// Null route: drop matching packets (Figure 1's B2 misconfiguration).
    Null,
}

/// A statically configured, non-propagated route on one device.
#[derive(Clone, Debug)]
pub struct StaticRoute {
    pub device: DeviceId,
    pub prefix: Prefix,
    pub target: StaticTarget,
    pub class: RouteClass,
}

/// Administrative distance: when one device has the same prefix from
/// several sources, the lowest-distance source wins (as on real routers).
fn admin_distance(source: Source) -> u8 {
    match source {
        Source::Connected => 0,
        Source::Static => 1,
        Source::Bgp => 20,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    Connected,
    Static,
    Bgp,
}

/// Builds a network's forwarding state from a control-plane description.
pub struct RibBuilder {
    topo: Topology,
    /// Per-device tier (0 = ToR ... upward). Used by [`Scope::MinTier`].
    tiers: Vec<u8>,
    /// Per-device BGP ASN. The ASN assignment doesn't change best paths
    /// on a tiered Clos with allow-as-in (path length == hop count), but
    /// it is kept for fidelity and surfaced in diagnostics.
    asns: Vec<u32>,
    originations: Vec<Origination>,
    statics: Vec<StaticRoute>,
}

impl RibBuilder {
    /// Start a builder; tiers and ASNs default to 0 for every device.
    pub fn new(topo: Topology) -> RibBuilder {
        let n = topo.device_count();
        RibBuilder {
            topo,
            tiers: vec![0; n],
            asns: vec![0; n],
            originations: Vec::new(),
            statics: Vec::new(),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the topology for late additions (loopbacks etc).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    pub fn set_tier(&mut self, device: DeviceId, tier: u8) {
        let idx = device.0 as usize;
        if idx >= self.tiers.len() {
            self.tiers.resize(idx + 1, 0);
        }
        self.tiers[idx] = tier;
    }

    pub fn set_asn(&mut self, device: DeviceId, asn: u32) {
        let idx = device.0 as usize;
        if idx >= self.asns.len() {
            self.asns.resize(idx + 1, 0);
        }
        self.asns[idx] = asn;
    }

    /// A device's ASN (0 if never set — devices added after `new`).
    pub fn asn(&self, device: DeviceId) -> u32 {
        self.asns.get(device.0 as usize).copied().unwrap_or(0)
    }

    /// A device's tier (0 if never set — devices added after `new`).
    pub fn tier(&self, device: DeviceId) -> u8 {
        self.tiers.get(device.0 as usize).copied().unwrap_or(0)
    }

    pub fn originate(&mut self, o: Origination) {
        self.originations.push(o);
    }

    pub fn add_static(&mut self, s: StaticRoute) {
        self.statics.push(s);
    }

    /// Convenience: both ends of a P2p link get the connected route for
    /// its point-to-point prefix, plus a self /32 (or /128) host route
    /// delivering packets addressed to the local end.
    ///
    /// `addrs` gives `(a_side_addr, b_side_addr)` inside `prefix`.
    pub fn add_p2p_connected(
        &mut self,
        a_iface: IfaceId,
        b_iface: IfaceId,
        prefix: Prefix,
        addrs: (u128, u128),
        self_deliver: (IfaceId, IfaceId),
    ) {
        let a_dev = self.topo.iface(a_iface).device;
        let b_dev = self.topo.iface(b_iface).device;
        debug_assert!(prefix.contains_addr(addrs.0) && prefix.contains_addr(addrs.1));
        // Connected /31 (or /126) pointing across the link.
        for (dev, out) in [(a_dev, a_iface), (b_dev, b_iface)] {
            self.statics.push(StaticRoute {
                device: dev,
                prefix,
                target: StaticTarget::Ifaces(vec![out]),
                class: RouteClass::Connected,
            });
        }
        // Self host routes: packets to my own link address are delivered
        // locally (modelled as forwarding to a local loopback-ish iface),
        // which is what prevents connected routes from ping-ponging.
        // They are a modelling artifact, not one of the paper's route
        // classes, so they are classed Other.
        let host_len = prefix.family().width();
        let mk_host = |addr: u128| match prefix.family() {
            netmodel::Family::V4 => Prefix::v4(addr as u32, host_len),
            netmodel::Family::V6 => Prefix::v6(addr, host_len),
        };
        for (dev, addr, deliver) in [
            (a_dev, addrs.0, self_deliver.0),
            (b_dev, addrs.1, self_deliver.1),
        ] {
            self.statics.push(StaticRoute {
                device: dev,
                prefix: mk_host(addr),
                target: StaticTarget::Ifaces(vec![deliver]),
                class: RouteClass::Other,
            });
        }
    }

    /// Compute every device's RIB and compile the forwarding state.
    pub fn build(self) -> Network {
        // candidate[(device, prefix)] -> (distance source, class, action)
        let mut best: BTreeMap<(u32, Prefix), (u8, RouteClass, Action)> = BTreeMap::new();
        let consider = |best: &mut BTreeMap<(u32, Prefix), (u8, RouteClass, Action)>,
                        device: DeviceId,
                        prefix: Prefix,
                        source: Source,
                        class: RouteClass,
                        action: Action| {
            let key = (device.0, prefix);
            let dist = admin_distance(source);
            match best.get(&key) {
                Some(&(d, _, _)) if d <= dist => {}
                _ => {
                    best.insert(key, (dist, class, action));
                }
            }
        };

        // Statics and connected routes first (they also win ties).
        for s in &self.statics {
            let source = if s.class == RouteClass::Connected {
                Source::Connected
            } else {
                Source::Static
            };
            let action = match &s.target {
                StaticTarget::Ifaces(outs) => Action::Forward(outs.clone()),
                StaticTarget::Null => Action::Drop,
            };
            consider(&mut best, s.device, s.prefix, source, s.class, action);
        }

        // BGP: group originations by prefix (multi-origin = anycast ECMP
        // towards the nearest originators), BFS per group.
        let mut groups: BTreeMap<Prefix, Vec<&Origination>> = BTreeMap::new();
        for o in &self.originations {
            groups.entry(o.prefix).or_default().push(o);
        }
        for (prefix, origins) in groups {
            // Scope union: a device accepts if any origination's scope
            // admits it (in practice all originations of one prefix share
            // a scope).
            let accepts = |d: DeviceId| {
                origins.iter().any(|o| o.scope.accepts(self.tier(d)))
                    && !origins.iter().any(|o| o.blocked.contains(&d))
            };
            let dist = self.bfs(&origins, &accepts);
            for (device, _) in self.topo.devices() {
                let du = dist[device.0 as usize];
                if du == u32::MAX {
                    continue;
                }
                if du == 0 {
                    // Originator: deliver locally if a delivery iface was
                    // given; otherwise the prefix is advertised but the
                    // originator holds no usable route (blackhole).
                    let outs: Vec<IfaceId> = origins
                        .iter()
                        .filter(|o| o.device == device)
                        .filter_map(|o| o.deliver)
                        .collect();
                    if !outs.is_empty() {
                        let class = origins[0].class;
                        consider(
                            &mut best,
                            device,
                            prefix,
                            Source::Bgp,
                            class,
                            Action::Forward(outs),
                        );
                    }
                    continue;
                }
                // ECMP next-hops: every link to a neighbor one step closer.
                let mut outs = Vec::new();
                for (iface, neigh) in self.topo.neighbors(device) {
                    if dist[neigh.0 as usize] == du - 1 && accepts(neigh) {
                        outs.push(iface);
                    }
                }
                debug_assert!(!outs.is_empty());
                let class = origins[0].class;
                consider(
                    &mut best,
                    device,
                    prefix,
                    Source::Bgp,
                    class,
                    Action::Forward(outs),
                );
            }
        }

        // Compile.
        let mut net = Network::new(self.topo);
        for ((device, prefix), (_dist, class, action)) in best {
            net.add_rule(
                DeviceId(device),
                Rule {
                    matches: netmodel::MatchFields::dst_prefix(prefix),
                    action,
                    class,
                },
            );
        }
        net.finalize();
        net
    }

    /// Multi-source BFS over devices accepted by `accepts`; returns hop
    /// distances (u32::MAX = unreachable or not accepting).
    fn bfs(&self, origins: &[&Origination], accepts: &impl Fn(DeviceId) -> bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.topo.device_count()];
        let mut q = VecDeque::new();
        for o in origins {
            // Originators always hold their own route.
            if dist[o.device.0 as usize] == u32::MAX {
                dist[o.device.0 as usize] = 0;
                q.push_back(o.device);
            }
        }
        while let Some(v) = q.pop_front() {
            let dv = dist[v.0 as usize];
            for (_iface, u) in self.topo.neighbors(v) {
                if dist[u.0 as usize] == u32::MAX && accepts(u) {
                    dist[u.0 as usize] = dv + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    /// Shortest hop distances from a single device over the raw topology
    /// (no scope filtering) — the oracle InternalRouteCheck's local
    /// contracts are built from (§7.3).
    pub fn hop_distances(topo: &Topology, from: DeviceId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; topo.device_count()];
        let mut q = VecDeque::new();
        dist[from.0 as usize] = 0;
        q.push_back(from);
        while let Some(v) = q.pop_front() {
            let dv = dist[v.0 as usize];
            for (_i, u) in topo.neighbors(v) {
                if dist[u.0 as usize] == u32::MAX {
                    dist[u.0 as usize] = dv + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::ipv4;
    use netmodel::topology::{IfaceKind, Role};

    /// tor1, tor2 -- spine1, spine2 (full mesh), one prefix per ToR.
    struct Fabric {
        b: RibBuilder,
        tors: Vec<DeviceId>,
        spines: Vec<DeviceId>,
        hosts: Vec<IfaceId>,
        p: Vec<Prefix>,
    }

    fn fabric() -> Fabric {
        let mut t = Topology::new();
        let tors = vec![
            t.add_device("tor1", Role::Tor),
            t.add_device("tor2", Role::Tor),
        ];
        let spines = vec![
            t.add_device("spine1", Role::Spine),
            t.add_device("spine2", Role::Spine),
        ];
        let hosts: Vec<IfaceId> = tors
            .iter()
            .map(|&d| t.add_iface(d, "hosts", IfaceKind::Host))
            .collect();
        for &tor in &tors {
            for &spine in &spines {
                t.add_link(tor, spine);
            }
        }
        let mut b = RibBuilder::new(t);
        for (i, &tor) in tors.iter().enumerate() {
            b.set_tier(tor, 0);
            b.set_asn(tor, 65000 + i as u32);
        }
        for &s in &spines {
            b.set_tier(s, 2);
            b.set_asn(s, 65100);
        }
        let p: Vec<Prefix> = vec![
            "10.0.1.0/24".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        ];
        for (i, &tor) in tors.iter().enumerate() {
            b.originate(Origination::new(
                tor,
                p[i],
                RouteClass::HostSubnet,
                Some(hosts[i]),
                Scope::All,
            ));
        }
        Fabric {
            b,
            tors,
            spines,
            hosts,
            p,
        }
    }

    #[test]
    fn originator_delivers_locally() {
        let f = fabric();
        let net = f.b.build();
        let rules = net.device_rules(f.tors[0]);
        let own = rules
            .iter()
            .find(|r| r.matches.dst == Some(f.p[0]))
            .unwrap();
        assert_eq!(own.action, Action::Forward(vec![f.hosts[0]]));
        assert_eq!(own.class, RouteClass::HostSubnet);
    }

    #[test]
    fn remote_prefix_gets_ecmp_over_both_spines() {
        let f = fabric();
        let tor1 = f.tors[0];
        let net = f.b.build();
        let rules = net.device_rules(tor1);
        let remote = rules
            .iter()
            .find(|r| r.matches.dst == Some(f.p[1]))
            .unwrap();
        let outs = remote.action.out_ifaces();
        assert_eq!(outs.len(), 2, "expected ECMP across both spines");
        let topo = net.topology();
        let next: Vec<DeviceId> = outs.iter().map(|&i| topo.neighbor_of(i).unwrap()).collect();
        assert!(next.contains(&f.spines[0]) && next.contains(&f.spines[1]));
    }

    #[test]
    fn spines_point_down_to_the_owning_tor() {
        let f = fabric();
        let net = f.b.build();
        for &s in &f.spines {
            for (i, &pref) in f.p.iter().enumerate() {
                let r = net
                    .device_rules(s)
                    .iter()
                    .find(|r| r.matches.dst == Some(pref))
                    .unwrap()
                    .clone();
                let outs = r.action.out_ifaces();
                assert_eq!(outs.len(), 1);
                assert_eq!(net.topology().neighbor_of(outs[0]), Some(f.tors[i]));
            }
        }
    }

    #[test]
    fn scoped_routes_stay_in_upper_tiers() {
        let mut f = fabric();
        let wan_pref: Prefix = "52.0.0.0/8".parse().unwrap();
        // Add a WAN router above spine1 that originates a scoped route.
        let wan = f.b.topology_mut().add_device("wan", Role::Wan);
        let ext =
            f.b.topology_mut()
                .add_iface(wan, "internet", IfaceKind::External);
        f.b.topology_mut().add_link(wan, f.spines[0]);
        f.b.set_tier(wan, 4);
        f.b.set_asn(wan, 65535);
        f.b.originate(Origination::new(
            wan,
            wan_pref,
            RouteClass::Wan,
            Some(ext),
            Scope::MinTier(2),
        ));
        let net = f.b.build();
        // Spine1 has the WAN route; the ToRs do not.
        assert!(net
            .device_rules(f.spines[0])
            .iter()
            .any(|r| r.matches.dst == Some(wan_pref)));
        for &tor in &f.tors {
            assert!(!net
                .device_rules(tor)
                .iter()
                .any(|r| r.matches.dst == Some(wan_pref)));
        }
    }

    #[test]
    fn static_null_route_beats_bgp() {
        let mut f = fabric();
        // tor1 null-routes tor2's prefix statically.
        let tor1 = f.tors[0];
        f.b.add_static(StaticRoute {
            device: tor1,
            prefix: f.p[1],
            target: StaticTarget::Null,
            class: RouteClass::StaticDefault,
        });
        let net = f.b.build();
        let r = net
            .device_rules(tor1)
            .iter()
            .find(|r| r.matches.dst == Some(f.p[1]))
            .unwrap()
            .clone();
        assert!(r.action.is_drop(), "static (distance 1) must beat BGP (20)");
    }

    #[test]
    fn connected_routes_and_self_hosts() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let lo_a = t.add_iface(a, "lo", IfaceKind::Loopback);
        let lo_b = t.add_iface(b, "lo", IfaceKind::Loopback);
        let (ai, bi) = t.add_link(a, b);
        let mut rb = RibBuilder::new(t);
        let p31: Prefix = "172.16.0.0/31".parse().unwrap();
        rb.add_p2p_connected(
            ai,
            bi,
            p31,
            (ipv4(172, 16, 0, 0) as u128, ipv4(172, 16, 0, 1) as u128),
            (lo_a, lo_b),
        );
        let net = rb.build();
        // a: /32 self route wins over the /31 for its own address.
        let rules_a = net.device_rules(a);
        assert_eq!(rules_a.len(), 2);
        assert_eq!(rules_a[0].matches.dst.unwrap().len(), 32); // LPM first
        assert_eq!(rules_a[0].action, Action::Forward(vec![lo_a]));
        assert_eq!(rules_a[1].matches.dst, Some(p31));
        assert_eq!(rules_a[1].action, Action::Forward(vec![ai]));
        assert_eq!(rules_a[1].class, RouteClass::Connected);
    }

    #[test]
    fn anycast_prefix_routes_to_nearest_origin() {
        // Both ToRs originate the same prefix; each spine should ECMP to
        // both (distance 1 each); each ToR delivers locally.
        let mut f = fabric();
        let any: Prefix = "10.9.9.0/24".parse().unwrap();
        for (i, &tor) in f.tors.clone().iter().enumerate() {
            f.b.originate(Origination::new(
                tor,
                any,
                RouteClass::HostSubnet,
                Some(f.hosts[i]),
                Scope::All,
            ));
        }
        let net = f.b.build();
        for &tor in &f.tors {
            let r = net
                .device_rules(tor)
                .iter()
                .find(|r| r.matches.dst == Some(any))
                .unwrap()
                .clone();
            assert_eq!(r.action.out_ifaces().len(), 1); // local delivery
        }
        for &s in &f.spines {
            let r = net
                .device_rules(s)
                .iter()
                .find(|r| r.matches.dst == Some(any))
                .unwrap()
                .clone();
            assert_eq!(r.action.out_ifaces().len(), 2); // ECMP to both ToRs
        }
    }

    #[test]
    fn hop_distances_bfs() {
        let f = fabric();
        let d = RibBuilder::hop_distances(f.b.topology(), f.tors[0]);
        assert_eq!(d[f.tors[0].0 as usize], 0);
        assert_eq!(d[f.spines[0].0 as usize], 1);
        assert_eq!(d[f.tors[1].0 as usize], 2);
    }

    #[test]
    fn unreachable_devices_get_no_route() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let island = t.add_device("island", Role::Tor);
        let h = t.add_iface(a, "hosts", IfaceKind::Host);
        let mut b = RibBuilder::new(t);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        b.originate(Origination::new(
            a,
            p,
            RouteClass::HostSubnet,
            Some(h),
            Scope::All,
        ));
        let net = b.build();
        assert!(net.device_rules(island).is_empty());
        assert_eq!(net.device_rules(a).len(), 1);
    }
}
