//! RIB computation and FIB compilation.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use netmodel::provenance::ConfigDb;
use netmodel::rule::{Action, RouteClass, Rule};
use netmodel::topology::{DeviceId, IfaceId, Topology};
use netmodel::{Network, Prefix};

/// Why a control-plane description cannot be compiled into forwarding
/// state. Every variant names the offending object so the error message
/// is actionable without a debugger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RibError {
    /// A device reference points outside the topology.
    UnknownDevice {
        /// The offending device id.
        device: DeviceId,
        /// How many devices the topology has.
        device_count: usize,
        /// Which kind of object held the reference.
        context: &'static str,
    },
    /// An interface reference points outside the topology, or belongs to
    /// a different device than the route naming it.
    BadIface {
        /// The offending interface id.
        iface: IfaceId,
        /// The device the reference was made for.
        device: DeviceId,
        /// Which kind of object held the reference.
        context: &'static str,
    },
    /// A per-device attribute slice has the wrong length (BGP simulator).
    LengthMismatch {
        /// Which attribute slice was mis-sized.
        what: &'static str,
        /// The length that was supplied.
        got: usize,
        /// The device count it must match.
        expected: usize,
    },
    /// A rule id names an index outside its device's table (rule
    /// deltas).
    BadRule {
        /// The offending rule id.
        id: netmodel::RuleId,
        /// The device's current table length.
        table_len: usize,
        /// Which operation held the reference.
        context: &'static str,
    },
    /// A topology delta names a device pair with no link between them.
    UnknownLink {
        /// One endpoint of the missing link.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
    },
    /// A link-down delta targets a link that is already down.
    LinkAlreadyDown {
        /// One endpoint of the link.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
    },
    /// A link-up delta targets a link that is not down.
    LinkNotDown {
        /// One endpoint of the link.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
    },
    /// A device-down delta targets a device that is already down.
    DeviceAlreadyDown {
        /// The targeted device.
        device: DeviceId,
    },
    /// A device-up delta targets a device that is not down.
    DeviceNotDown {
        /// The targeted device.
        device: DeviceId,
    },
}

impl fmt::Display for RibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibError::UnknownDevice {
                device,
                device_count,
                context,
            } => write!(
                f,
                "{context}: device {device:?} does not exist \
                 (topology has {device_count} devices)"
            ),
            RibError::BadIface {
                iface,
                device,
                context,
            } => write!(
                f,
                "{context}: interface {iface:?} is not an interface of device {device:?}"
            ),
            RibError::LengthMismatch {
                what,
                got,
                expected,
            } => write!(
                f,
                "{what}: got {got} entries, need one per device ({expected})"
            ),
            RibError::BadRule {
                id,
                table_len,
                context,
            } => write!(
                f,
                "{context}: rule {id:?} is outside its device's table \
                 ({table_len} rules)"
            ),
            RibError::UnknownLink { a, b } => {
                write!(f, "topology delta: no link exists between {a:?} and {b:?}")
            }
            RibError::LinkAlreadyDown { a, b } => {
                write!(f, "topology delta: link {a:?}-{b:?} is already down")
            }
            RibError::LinkNotDown { a, b } => {
                write!(f, "topology delta: link {a:?}-{b:?} is not down")
            }
            RibError::DeviceAlreadyDown { device } => {
                write!(f, "topology delta: device {device:?} is already down")
            }
            RibError::DeviceNotDown { device } => {
                write!(f, "topology delta: device {device:?} is not down")
            }
        }
    }
}

impl std::error::Error for RibError {}

/// Which devices accept (install and re-advertise) a BGP route.
///
/// `MinTier` is the stand-in for the production network's route-leak
/// policy: WAN routes are advertised to the regional hub and spine tiers
/// but never leaked into pods (§7.2, "wide-area routes").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Every device installs the route.
    All,
    /// Only devices whose tier is at least this value install the route.
    MinTier(u8),
}

impl Scope {
    pub(crate) fn accepts(self, tier: u8) -> bool {
        match self {
            Scope::All => true,
            Scope::MinTier(t) => tier >= t,
        }
    }
}

/// A prefix originated into BGP at a device (host subnet, loopback,
/// redistributed WAN route, or the BGP default from the WAN).
#[derive(Clone, Debug)]
pub struct Origination {
    /// The originating device.
    pub device: DeviceId,
    /// The originated prefix.
    pub prefix: Prefix,
    /// Route class stamped onto every FIB rule this origination creates.
    pub class: RouteClass,
    /// Where the originator itself sends matching packets: a host,
    /// loopback, or external interface. `None` means the originator
    /// advertises the prefix but blackholes matching traffic locally
    /// (used to model redistribution anomalies).
    pub deliver: Option<IfaceId>,
    /// Which tiers install (and re-advertise) the route.
    pub scope: Scope,
    /// Devices that refuse this route: they neither install nor
    /// re-advertise it. Models propagation anomalies like Figure 1's B2,
    /// whose null-routed static default stops it from passing the BGP
    /// default on to the spines.
    pub blocked: Vec<DeviceId>,
}

impl Origination {
    /// An origination with no blocked devices.
    pub fn new(
        device: DeviceId,
        prefix: Prefix,
        class: RouteClass,
        deliver: Option<IfaceId>,
        scope: Scope,
    ) -> Origination {
        Origination {
            device,
            prefix,
            class,
            deliver,
            scope,
            blocked: Vec::new(),
        }
    }
}

/// Target of a statically configured route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticTarget {
    /// Forward out these interfaces (ECMP if several).
    Ifaces(Vec<IfaceId>),
    /// Null route: drop matching packets (Figure 1's B2 misconfiguration).
    Null,
}

/// A statically configured, non-propagated route on one device.
#[derive(Clone, Debug)]
pub struct StaticRoute {
    /// The configured device.
    pub device: DeviceId,
    /// The destination prefix.
    pub prefix: Prefix,
    /// Where matching packets go.
    pub target: StaticTarget,
    /// Route class stamped onto the compiled FIB rule.
    pub class: RouteClass,
}

/// Administrative distance: when one device has the same prefix from
/// several sources, the lowest-distance source wins (as on real routers).
fn admin_distance(source: Source) -> u8 {
    match source {
        Source::Connected => 0,
        Source::Static => 1,
        Source::Bgp => 20,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Source {
    Connected,
    Static,
    Bgp,
}

/// Builds a network's forwarding state from a control-plane description.
pub struct RibBuilder {
    topo: Topology,
    /// Per-device tier (0 = ToR ... upward). Used by [`Scope::MinTier`].
    tiers: Vec<u8>,
    /// Per-device BGP ASN. The ASN assignment doesn't change best paths
    /// on a tiered Clos with allow-as-in (path length == hop count), but
    /// it is kept for fidelity and surfaced in diagnostics.
    asns: Vec<u32>,
    originations: Vec<Origination>,
    statics: Vec<StaticRoute>,
}

impl RibBuilder {
    /// Start a builder; tiers and ASNs default to 0 for every device.
    pub fn new(topo: Topology) -> RibBuilder {
        let n = topo.device_count();
        RibBuilder {
            topo,
            tiers: vec![0; n],
            asns: vec![0; n],
            originations: Vec::new(),
            statics: Vec::new(),
        }
    }

    /// The topology the forwarding state is being built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the topology for late additions (loopbacks etc).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Set a device's tier (used by [`Scope::MinTier`] route scoping).
    pub fn set_tier(&mut self, device: DeviceId, tier: u8) {
        let idx = device.0 as usize;
        if idx >= self.tiers.len() {
            self.tiers.resize(idx + 1, 0);
        }
        self.tiers[idx] = tier;
    }

    /// Set a device's BGP ASN (diagnostic fidelity; see the field docs).
    pub fn set_asn(&mut self, device: DeviceId, asn: u32) {
        let idx = device.0 as usize;
        if idx >= self.asns.len() {
            self.asns.resize(idx + 1, 0);
        }
        self.asns[idx] = asn;
    }

    /// A device's ASN (0 if never set — devices added after `new`).
    pub fn asn(&self, device: DeviceId) -> u32 {
        self.asns.get(device.0 as usize).copied().unwrap_or(0)
    }

    /// A device's tier (0 if never set — devices added after `new`).
    pub fn tier(&self, device: DeviceId) -> u8 {
        self.tiers.get(device.0 as usize).copied().unwrap_or(0)
    }

    /// Originate a prefix into BGP.
    pub fn originate(&mut self, o: Origination) {
        self.originations.push(o);
    }

    /// Add a statically configured route.
    pub fn add_static(&mut self, s: StaticRoute) {
        self.statics.push(s);
    }

    /// Convenience: both ends of a P2p link get the connected route for
    /// its point-to-point prefix, plus a self /32 (or /128) host route
    /// delivering packets addressed to the local end.
    ///
    /// `addrs` gives `(a_side_addr, b_side_addr)` inside `prefix`.
    pub fn add_p2p_connected(
        &mut self,
        a_iface: IfaceId,
        b_iface: IfaceId,
        prefix: Prefix,
        addrs: (u128, u128),
        self_deliver: (IfaceId, IfaceId),
    ) {
        let a_dev = self.topo.iface(a_iface).device;
        let b_dev = self.topo.iface(b_iface).device;
        debug_assert!(prefix.contains_addr(addrs.0) && prefix.contains_addr(addrs.1));
        // Connected /31 (or /126) pointing across the link.
        for (dev, out) in [(a_dev, a_iface), (b_dev, b_iface)] {
            self.statics.push(StaticRoute {
                device: dev,
                prefix,
                target: StaticTarget::Ifaces(vec![out]),
                class: RouteClass::Connected,
            });
        }
        // Self host routes: packets to my own link address are delivered
        // locally (modelled as forwarding to a local loopback-ish iface),
        // which is what prevents connected routes from ping-ponging.
        // They are a modelling artifact, not one of the paper's route
        // classes, so they are classed Other.
        let host_len = prefix.family().width();
        let mk_host = |addr: u128| match prefix.family() {
            netmodel::Family::V4 => Prefix::v4(addr as u32, host_len),
            netmodel::Family::V6 => Prefix::v6(addr, host_len),
        };
        for (dev, addr, deliver) in [
            (a_dev, addrs.0, self_deliver.0),
            (b_dev, addrs.1, self_deliver.1),
        ] {
            self.statics.push(StaticRoute {
                device: dev,
                prefix: mk_host(addr),
                target: StaticTarget::Ifaces(vec![deliver]),
                class: RouteClass::Other,
            });
        }
    }

    /// Check every device/interface reference in the control-plane
    /// description against the topology before [`Self::build`] indexes
    /// with them. Malformed descriptions (hand-written configs, fuzzed
    /// inputs) become a [`RibError`] instead of an index panic deep in
    /// the BFS.
    fn validate(&self) -> Result<(), RibError> {
        let n = self.topo.device_count();
        let check_dev = |device: DeviceId, context: &'static str| {
            if (device.0 as usize) < n {
                Ok(())
            } else {
                Err(RibError::UnknownDevice {
                    device,
                    device_count: n,
                    context,
                })
            }
        };
        let check_iface = |iface: IfaceId, device: DeviceId, context: &'static str| {
            if (iface.0 as usize) < self.topo.iface_count()
                && self.topo.iface(iface).device == device
            {
                Ok(())
            } else {
                Err(RibError::BadIface {
                    iface,
                    device,
                    context,
                })
            }
        };
        for o in &self.originations {
            check_dev(o.device, "origination")?;
            if let Some(iface) = o.deliver {
                check_iface(iface, o.device, "origination delivery interface")?;
            }
            for &b in &o.blocked {
                check_dev(b, "origination blocked list")?;
            }
        }
        for s in &self.statics {
            check_dev(s.device, "static route")?;
            if let StaticTarget::Ifaces(outs) = &s.target {
                for &i in outs {
                    check_iface(i, s.device, "static route next-hop")?;
                }
            }
        }
        Ok(())
    }

    /// Compute every device's RIB and compile the forwarding state.
    ///
    /// Panics on a malformed description; [`Self::try_build`] is the
    /// non-panicking form.
    pub fn build(self) -> Network {
        match self.try_build() {
            Ok(net) => net,
            Err(e) => panic!("RibBuilder::build: invalid control-plane description: {e}"),
        }
    }

    /// Validate the description and hand it to a resident
    /// [`crate::engine::RoutingEngine`], returning the engine plus the
    /// compiled healthy-state network. The network is bit-identical to
    /// what [`Self::try_build`] on the same description produces; the
    /// engine then keeps it converged under topology deltas.
    pub fn into_engine(self) -> Result<(crate::engine::RoutingEngine, Network), RibError> {
        self.validate()?;
        Ok(crate::engine::RoutingEngine::new_internal(
            self.topo,
            self.tiers,
            self.asns,
            self.originations,
            self.statics,
        ))
    }

    /// [`Self::try_build`] plus the attribution database: compile the
    /// forwarding state and report, per installed FIB entry, the config
    /// constructs (originations, eBGP sessions, statics) that produced
    /// it. The returned network is bit-identical to [`Self::try_build`]
    /// on the same description — both fold the same converged fixpoint.
    ///
    /// # Examples
    ///
    /// ```
    /// use netmodel::provenance::Construct;
    /// use netmodel::rule::RouteClass;
    /// use netmodel::topology::{IfaceKind, Role, Topology};
    /// use routing::{Origination, RibBuilder, Scope};
    ///
    /// let mut topo = Topology::new();
    /// let tor = topo.add_device("tor", Role::Tor);
    /// let spine = topo.add_device("spine", Role::Spine);
    /// let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
    /// topo.add_link(tor, spine);
    /// let mut rb = RibBuilder::new(topo);
    /// let prefix = "10.0.1.0/24".parse().unwrap();
    /// rb.originate(Origination::new(
    ///     tor,
    ///     prefix,
    ///     RouteClass::HostSubnet,
    ///     Some(hosts),
    ///     Scope::All,
    /// ));
    /// let (net, db) = rb.try_build_with_provenance().unwrap();
    ///
    /// // The spine's FIB entry is attributed to the session it crossed.
    /// let via = db.attribution(spine, prefix).unwrap();
    /// assert!(via.contains(&Construct::session(tor, spine)));
    /// assert_eq!(net.device_rules(spine).len(), 1);
    /// ```
    pub fn try_build_with_provenance(self) -> Result<(Network, ConfigDb), RibError> {
        let (engine, net) = self.into_engine()?;
        Ok((net, engine.config_db()))
    }

    /// [`Self::build`], returning [`RibError`] on out-of-range device or
    /// interface references instead of panicking.
    pub fn try_build(self) -> Result<Network, RibError> {
        let _span = netobs::span!("fib_build");
        self.validate()?;
        // candidate[(device, prefix)] -> (distance source, class, action)
        let mut best: BTreeMap<(u32, Prefix), (u8, RouteClass, Action)> = BTreeMap::new();
        let consider = |best: &mut BTreeMap<(u32, Prefix), (u8, RouteClass, Action)>,
                        device: DeviceId,
                        prefix: Prefix,
                        source: Source,
                        class: RouteClass,
                        action: Action| {
            let key = (device.0, prefix);
            let dist = admin_distance(source);
            match best.get(&key) {
                Some(&(d, _, _)) if d <= dist => {}
                _ => {
                    best.insert(key, (dist, class, action));
                }
            }
        };

        // Statics and connected routes first (they also win ties).
        let statics_span = netobs::span!("fib_statics");
        for s in &self.statics {
            let source = if s.class == RouteClass::Connected {
                Source::Connected
            } else {
                Source::Static
            };
            let action = match &s.target {
                StaticTarget::Ifaces(outs) => Action::Forward(outs.clone()),
                StaticTarget::Null => Action::Drop,
            };
            consider(&mut best, s.device, s.prefix, source, s.class, action);
        }
        drop(statics_span);

        // BGP: group originations by prefix (multi-origin = anycast ECMP
        // towards the nearest originators), BFS per group.
        let bgp_span = netobs::span!("fib_bgp");
        let mut groups: BTreeMap<Prefix, Vec<&Origination>> = BTreeMap::new();
        for o in &self.originations {
            groups.entry(o.prefix).or_default().push(o);
        }
        for (prefix, origins) in groups {
            // Scope union: a device accepts if any origination's scope
            // admits it (in practice all originations of one prefix share
            // a scope).
            let accepts = |d: DeviceId| {
                origins.iter().any(|o| o.scope.accepts(self.tier(d)))
                    && !origins.iter().any(|o| o.blocked.contains(&d))
            };
            let dist = self.bfs(&origins, &accepts);
            for (device, _) in self.topo.devices() {
                let du = dist[device.0 as usize];
                if du == u32::MAX {
                    continue;
                }
                if du == 0 {
                    // Originator: deliver locally if a delivery iface was
                    // given; otherwise the prefix is advertised but the
                    // originator holds no usable route (blackhole).
                    let outs: Vec<IfaceId> = origins
                        .iter()
                        .filter(|o| o.device == device)
                        .filter_map(|o| o.deliver)
                        .collect();
                    if !outs.is_empty() {
                        let class = origins[0].class;
                        consider(
                            &mut best,
                            device,
                            prefix,
                            Source::Bgp,
                            class,
                            Action::Forward(outs),
                        );
                    }
                    continue;
                }
                // ECMP next-hops: every link to a neighbor one step
                // closer. Finite distance already implies the neighbor
                // accepted (or legitimately originated) the route, so no
                // acceptance re-check — re-checking would wrongly exclude
                // seeded originators, as acceptance is about *installing*
                // propagated routes, not about being a next-hop.
                let mut outs = Vec::new();
                for (iface, neigh) in self.topo.neighbors(device) {
                    if dist[neigh.0 as usize] == du - 1 {
                        outs.push(iface);
                    }
                }
                debug_assert!(
                    !outs.is_empty(),
                    "BFS invariant: device {device:?} at distance {du} from {prefix} \
                     must have a neighbor one step closer"
                );
                let class = origins[0].class;
                consider(
                    &mut best,
                    device,
                    prefix,
                    Source::Bgp,
                    class,
                    Action::Forward(outs),
                );
            }
        }
        drop(bgp_span);

        // Compile.
        let _compile_span = netobs::span!("fib_compile");
        let mut net = Network::new(self.topo);
        for ((device, prefix), (_dist, class, action)) in best {
            net.add_rule(
                DeviceId(device),
                Rule {
                    matches: netmodel::MatchFields::dst_prefix(prefix),
                    action,
                    class,
                },
            );
        }
        net.finalize();
        Ok(net)
    }

    /// Multi-source BFS over devices accepted by `accepts`; returns hop
    /// distances (u32::MAX = unreachable or not accepting).
    fn bfs(&self, origins: &[&Origination], accepts: &impl Fn(DeviceId) -> bool) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.topo.device_count()];
        let mut q = VecDeque::new();
        for o in origins {
            // A blocked originator neither installs nor advertises its
            // own route — the same seeding rule as the message-passing
            // simulator (`bgp::simulate`). Seeding it anyway used to
            // leave downstream devices with a finite distance but no
            // usable next-hop (empty ECMP set). Scope is deliberately
            // not checked here: an out-of-scope originator still holds
            // and advertises its origination, exactly as in eBGP.
            if origins.iter().any(|oo| oo.blocked.contains(&o.device)) {
                continue;
            }
            if dist[o.device.0 as usize] == u32::MAX {
                dist[o.device.0 as usize] = 0;
                q.push_back(o.device);
            }
        }
        while let Some(v) = q.pop_front() {
            let dv = dist[v.0 as usize];
            for (_iface, u) in self.topo.neighbors(v) {
                if dist[u.0 as usize] == u32::MAX && accepts(u) {
                    dist[u.0 as usize] = dv + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    /// Shortest hop distances from a single device over the raw topology
    /// (no scope filtering) — the oracle InternalRouteCheck's local
    /// contracts are built from (§7.3).
    pub fn hop_distances(topo: &Topology, from: DeviceId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; topo.device_count()];
        let mut q = VecDeque::new();
        dist[from.0 as usize] = 0;
        q.push_back(from);
        while let Some(v) = q.pop_front() {
            let dv = dist[v.0 as usize];
            for (_i, u) in topo.neighbors(v) {
                if dist[u.0 as usize] == u32::MAX {
                    dist[u.0 as usize] = dv + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::addr::ipv4;
    use netmodel::topology::{IfaceKind, Role};

    /// tor1, tor2 -- spine1, spine2 (full mesh), one prefix per ToR.
    struct Fabric {
        b: RibBuilder,
        tors: Vec<DeviceId>,
        spines: Vec<DeviceId>,
        hosts: Vec<IfaceId>,
        p: Vec<Prefix>,
    }

    fn fabric() -> Fabric {
        let mut t = Topology::new();
        let tors = vec![
            t.add_device("tor1", Role::Tor),
            t.add_device("tor2", Role::Tor),
        ];
        let spines = vec![
            t.add_device("spine1", Role::Spine),
            t.add_device("spine2", Role::Spine),
        ];
        let hosts: Vec<IfaceId> = tors
            .iter()
            .map(|&d| t.add_iface(d, "hosts", IfaceKind::Host))
            .collect();
        for &tor in &tors {
            for &spine in &spines {
                t.add_link(tor, spine);
            }
        }
        let mut b = RibBuilder::new(t);
        for (i, &tor) in tors.iter().enumerate() {
            b.set_tier(tor, 0);
            b.set_asn(tor, 65000 + i as u32);
        }
        for &s in &spines {
            b.set_tier(s, 2);
            b.set_asn(s, 65100);
        }
        let p: Vec<Prefix> = vec![
            "10.0.1.0/24".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        ];
        for (i, &tor) in tors.iter().enumerate() {
            b.originate(Origination::new(
                tor,
                p[i],
                RouteClass::HostSubnet,
                Some(hosts[i]),
                Scope::All,
            ));
        }
        Fabric {
            b,
            tors,
            spines,
            hosts,
            p,
        }
    }

    #[test]
    fn originator_delivers_locally() {
        let f = fabric();
        let net = f.b.build();
        let rules = net.device_rules(f.tors[0]);
        let own = rules
            .iter()
            .find(|r| r.matches.dst == Some(f.p[0]))
            .unwrap();
        assert_eq!(own.action, Action::Forward(vec![f.hosts[0]]));
        assert_eq!(own.class, RouteClass::HostSubnet);
    }

    #[test]
    fn remote_prefix_gets_ecmp_over_both_spines() {
        let f = fabric();
        let tor1 = f.tors[0];
        let net = f.b.build();
        let rules = net.device_rules(tor1);
        let remote = rules
            .iter()
            .find(|r| r.matches.dst == Some(f.p[1]))
            .unwrap();
        let outs = remote.action.out_ifaces();
        assert_eq!(outs.len(), 2, "expected ECMP across both spines");
        let topo = net.topology();
        let next: Vec<DeviceId> = outs.iter().map(|&i| topo.neighbor_of(i).unwrap()).collect();
        assert!(next.contains(&f.spines[0]) && next.contains(&f.spines[1]));
    }

    #[test]
    fn spines_point_down_to_the_owning_tor() {
        let f = fabric();
        let net = f.b.build();
        for &s in &f.spines {
            for (i, &pref) in f.p.iter().enumerate() {
                let r = net
                    .device_rules(s)
                    .iter()
                    .find(|r| r.matches.dst == Some(pref))
                    .unwrap()
                    .clone();
                let outs = r.action.out_ifaces();
                assert_eq!(outs.len(), 1);
                assert_eq!(net.topology().neighbor_of(outs[0]), Some(f.tors[i]));
            }
        }
    }

    #[test]
    fn scoped_routes_stay_in_upper_tiers() {
        let mut f = fabric();
        let wan_pref: Prefix = "52.0.0.0/8".parse().unwrap();
        // Add a WAN router above spine1 that originates a scoped route.
        let wan = f.b.topology_mut().add_device("wan", Role::Wan);
        let ext =
            f.b.topology_mut()
                .add_iface(wan, "internet", IfaceKind::External);
        f.b.topology_mut().add_link(wan, f.spines[0]);
        f.b.set_tier(wan, 4);
        f.b.set_asn(wan, 65535);
        f.b.originate(Origination::new(
            wan,
            wan_pref,
            RouteClass::Wan,
            Some(ext),
            Scope::MinTier(2),
        ));
        let net = f.b.build();
        // Spine1 has the WAN route; the ToRs do not.
        assert!(net
            .device_rules(f.spines[0])
            .iter()
            .any(|r| r.matches.dst == Some(wan_pref)));
        for &tor in &f.tors {
            assert!(!net
                .device_rules(tor)
                .iter()
                .any(|r| r.matches.dst == Some(wan_pref)));
        }
    }

    #[test]
    fn static_null_route_beats_bgp() {
        let mut f = fabric();
        // tor1 null-routes tor2's prefix statically.
        let tor1 = f.tors[0];
        f.b.add_static(StaticRoute {
            device: tor1,
            prefix: f.p[1],
            target: StaticTarget::Null,
            class: RouteClass::StaticDefault,
        });
        let net = f.b.build();
        let r = net
            .device_rules(tor1)
            .iter()
            .find(|r| r.matches.dst == Some(f.p[1]))
            .unwrap()
            .clone();
        assert!(r.action.is_drop(), "static (distance 1) must beat BGP (20)");
    }

    #[test]
    fn connected_routes_and_self_hosts() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let lo_a = t.add_iface(a, "lo", IfaceKind::Loopback);
        let lo_b = t.add_iface(b, "lo", IfaceKind::Loopback);
        let (ai, bi) = t.add_link(a, b);
        let mut rb = RibBuilder::new(t);
        let p31: Prefix = "172.16.0.0/31".parse().unwrap();
        rb.add_p2p_connected(
            ai,
            bi,
            p31,
            (ipv4(172, 16, 0, 0) as u128, ipv4(172, 16, 0, 1) as u128),
            (lo_a, lo_b),
        );
        let net = rb.build();
        // a: /32 self route wins over the /31 for its own address.
        let rules_a = net.device_rules(a);
        assert_eq!(rules_a.len(), 2);
        assert_eq!(rules_a[0].matches.dst.unwrap().len(), 32); // LPM first
        assert_eq!(rules_a[0].action, Action::Forward(vec![lo_a]));
        assert_eq!(rules_a[1].matches.dst, Some(p31));
        assert_eq!(rules_a[1].action, Action::Forward(vec![ai]));
        assert_eq!(rules_a[1].class, RouteClass::Connected);
    }

    #[test]
    fn anycast_prefix_routes_to_nearest_origin() {
        // Both ToRs originate the same prefix; each spine should ECMP to
        // both (distance 1 each); each ToR delivers locally.
        let mut f = fabric();
        let any: Prefix = "10.9.9.0/24".parse().unwrap();
        for (i, &tor) in f.tors.clone().iter().enumerate() {
            f.b.originate(Origination::new(
                tor,
                any,
                RouteClass::HostSubnet,
                Some(f.hosts[i]),
                Scope::All,
            ));
        }
        let net = f.b.build();
        for &tor in &f.tors {
            let r = net
                .device_rules(tor)
                .iter()
                .find(|r| r.matches.dst == Some(any))
                .unwrap()
                .clone();
            assert_eq!(r.action.out_ifaces().len(), 1); // local delivery
        }
        for &s in &f.spines {
            let r = net
                .device_rules(s)
                .iter()
                .find(|r| r.matches.dst == Some(any))
                .unwrap()
                .clone();
            assert_eq!(r.action.out_ifaces().len(), 2); // ECMP to both ToRs
        }
    }

    #[test]
    fn hop_distances_bfs() {
        let f = fabric();
        let d = RibBuilder::hop_distances(f.b.topology(), f.tors[0]);
        assert_eq!(d[f.tors[0].0 as usize], 0);
        assert_eq!(d[f.spines[0].0 as usize], 1);
        assert_eq!(d[f.tors[1].0 as usize], 2);
    }

    #[test]
    fn blocked_originator_installs_and_propagates_nothing() {
        // Previously panicking input (debug_assert on an empty ECMP set):
        // the BFS seeded blocked originators, so their neighbors got a
        // finite distance but no acceptable next-hop. The BGP simulator
        // (`bgp::simulate`) already treated this correctly — a blocked
        // originator neither installs nor advertises — and the builder
        // must agree with it.
        let mut f = fabric();
        let any: Prefix = "10.66.0.0/24".parse().unwrap();
        let tor1 = f.tors[0];
        let mut o = Origination::new(
            tor1,
            any,
            RouteClass::HostSubnet,
            Some(f.hosts[0]),
            Scope::All,
        );
        o.blocked.push(tor1); // the originator blocks its own route
        f.b.originate(o);
        let net = f.b.build(); // must not panic
        for (device, _) in net.topology().devices() {
            assert!(
                !net.device_rules(device)
                    .iter()
                    .any(|r| r.matches.dst == Some(any)),
                "{device:?} must not hold a route blocked at its only originator"
            );
        }
    }

    #[test]
    fn blocked_originator_with_anycast_peer_leaves_one_path() {
        // Same prefix originated at both ToRs, blocked at tor1: everyone
        // routes towards tor2 only; previously this also tripped the
        // empty-ECMP debug_assert on devices adjacent to tor1.
        let mut f = fabric();
        let any: Prefix = "10.66.0.0/24".parse().unwrap();
        let (tor1, tor2) = (f.tors[0], f.tors[1]);
        for (i, &tor) in [tor1, tor2].iter().enumerate() {
            let mut o = Origination::new(
                tor,
                any,
                RouteClass::HostSubnet,
                Some(f.hosts[i]),
                Scope::All,
            );
            if tor == tor1 {
                o.blocked.push(tor1);
            }
            f.b.originate(o);
        }
        let net = f.b.build();
        assert!(!net
            .device_rules(tor1)
            .iter()
            .any(|r| r.matches.dst == Some(any)));
        for &s in &f.spines {
            let r = net
                .device_rules(s)
                .iter()
                .find(|r| r.matches.dst == Some(any))
                .expect("spines still learn the route from tor2")
                .clone();
            let outs = r.action.out_ifaces();
            assert_eq!(outs.len(), 1);
            assert_eq!(net.topology().neighbor_of(outs[0]), Some(tor2));
        }
    }

    #[test]
    fn out_of_range_origination_device_is_a_rib_error() {
        // Previously panicking input (index out of bounds in the BFS):
        // an origination naming a device the topology doesn't have.
        let f = fabric();
        let mut b = f.b;
        b.originate(Origination::new(
            DeviceId(999),
            "10.77.0.0/24".parse().unwrap(),
            RouteClass::HostSubnet,
            None,
            Scope::All,
        ));
        match b.try_build() {
            Err(RibError::UnknownDevice {
                device, context, ..
            }) => {
                assert_eq!(device, DeviceId(999));
                assert_eq!(context, "origination");
            }
            other => panic!("expected UnknownDevice, got {other:?}"),
        }
    }

    #[test]
    fn foreign_static_next_hop_is_a_rib_error() {
        let f = fabric();
        let mut b = f.b;
        // hosts[1] belongs to tor2, not tor1.
        b.add_static(StaticRoute {
            device: f.tors[0],
            prefix: "10.88.0.0/24".parse().unwrap(),
            target: StaticTarget::Ifaces(vec![f.hosts[1]]),
            class: RouteClass::Other,
        });
        let err = b.try_build().unwrap_err();
        assert!(matches!(err, RibError::BadIface { .. }), "{err:?}");
        assert!(err.to_string().contains("static route next-hop"));
    }

    #[test]
    fn unreachable_devices_get_no_route() {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let island = t.add_device("island", Role::Tor);
        let h = t.add_iface(a, "hosts", IfaceKind::Host);
        let mut b = RibBuilder::new(t);
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        b.originate(Origination::new(
            a,
            p,
            RouteClass::HostSubnet,
            Some(h),
            Scope::All,
        ));
        let net = b.build();
        assert!(net.device_rules(island).is_empty());
        assert_eq!(net.device_rules(a).len(), 1);
    }
}
