//! # routing — control-plane substrate: FIB synthesis for Clos networks
//!
//! The paper's case-study network (§7.1) runs eBGP everywhere: private
//! ASNs per tier, `allow-as-in` so paths re-entering a tier's ASN are
//! accepted, ECMP on all routers, static default routes northbound as a
//! fail-safe, connected /31 (IPv4) and /126 (IPv6) routes on point-to-
//! point links, loopbacks redistributed into BGP, and wide-area routes
//! that are advertised to the regional hub and spine layers *but not
//! leaked further down*.
//!
//! This crate reproduces that control plane. On a Clos fabric with
//! per-tier ASNs and `allow-as-in`, BGP best-path selection (shortest AS
//! path, ECMP across ties) converges to the set of *topological shortest
//! paths* towards each prefix's originators — which is exactly the
//! property InternalRouteCheck validates in §7.3. [`RibBuilder`] computes
//! that fixpoint by multi-source BFS per originated prefix, applies route
//! scopes (the stand-in for route-leak policy), resolves same-prefix
//! conflicts by administrative distance (connected < static < BGP), and
//! compiles everything into [`netmodel::Network`] forwarding state.
//!
//! Substitution note (recorded in DESIGN.md): the real network computes
//! FIBs with a production BGP simulator/emulator; what coverage analysis
//! needs is FIBs with the same *route classes and shapes*, which this
//! builder produces deterministically.

#![deny(missing_docs)]

pub mod bgp;
pub mod delta;
pub mod engine;
pub mod rib;

pub use bgp::{simulate, try_simulate, BgpConfig, BgpRibs, BgpRoute};
pub use delta::{apply_rule_insert, apply_rule_withdraw};
pub use engine::{FibChange, FibDiff, RoutingEngine, TopologyDelta};
pub use rib::{Origination, RibBuilder, RibError, Scope, StaticRoute, StaticTarget};
