//! A message-passing eBGP simulator.
//!
//! [`crate::RibBuilder`] computes FIBs by multi-source BFS, justified by
//! the claim that on a tiered Clos running eBGP with per-tier ASNs,
//! `allow-as-in`, and ECMP, best-path selection converges to exactly the
//! topological shortest paths. This module makes that claim *checkable*:
//! it simulates BGP the way the protocol actually works — per-neighbor
//! advertisements carrying AS paths, import filtering, best-path
//! selection on AS-path length, ECMP across ties, synchronous rounds to
//! a fixpoint — and the test suite asserts its FIBs are identical to the
//! BFS builder's on the generated fabrics.
//!
//! It also demonstrates *why* the case-study network needs
//! `allow-as-in` (§7.1): with per-tier ASNs, a route crossing two
//! datacenters re-enters the spine tier's ASN, and without the knob the
//! second spine would reject it as a loop.

use std::collections::BTreeMap;

use netmodel::topology::{DeviceId, IfaceId, Topology};
use netmodel::Prefix;

use crate::rib::{Origination, RibError, Scope};

/// One route in a device's Loc-RIB.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BgpRoute {
    /// AS path to the originator, *excluding* this device's own ASN
    /// (empty at the originator).
    pub as_path: Vec<u32>,
    /// ECMP next-hop interfaces (empty at the originator).
    pub next_hops: Vec<IfaceId>,
}

impl BgpRoute {
    /// AS-path length (the best-path metric on this fabric).
    pub fn path_len(&self) -> usize {
        self.as_path.len()
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct BgpConfig {
    /// Accept routes whose AS path already contains our own ASN (the
    /// `allow-as-in` knob every router in §7.1 enables).
    pub allow_as_in: bool,
    /// Safety bound on synchronous rounds (defaults to device count).
    pub max_rounds: usize,
}

impl Default for BgpConfig {
    fn default() -> BgpConfig {
        BgpConfig {
            allow_as_in: true,
            max_rounds: 0,
        }
    }
}

/// The result: per-device Loc-RIBs.
#[derive(Clone, Debug)]
pub struct BgpRibs {
    /// `ribs[device] : prefix → best route`.
    pub ribs: Vec<BTreeMap<Prefix, BgpRoute>>,
    /// Rounds until the fixpoint (diagnostics; ≈ fabric diameter + 1).
    pub rounds: usize,
}

impl BgpRibs {
    /// The best route a device holds for a prefix, if any.
    pub fn route(&self, device: DeviceId, prefix: &Prefix) -> Option<&BgpRoute> {
        self.ribs[device.0 as usize].get(prefix)
    }
}

/// Run synchronous eBGP to a fixpoint.
///
/// `asns[d]` is device `d`'s ASN; `tiers[d]` feeds [`Scope`] acceptance;
/// originations advertise prefixes with delivery semantics handled by
/// the caller (this simulator computes propagation, not FIB actions).
///
/// Panics on malformed input; [`try_simulate`] is the non-panicking form.
pub fn simulate(
    topo: &Topology,
    asns: &[u32],
    tiers: &[u8],
    originations: &[Origination],
    config: &BgpConfig,
) -> BgpRibs {
    match try_simulate(topo, asns, tiers, originations, config) {
        Ok(ribs) => ribs,
        Err(e) => panic!("bgp::simulate: invalid input: {e}"),
    }
}

/// [`simulate`], returning [`RibError`] on malformed input (attribute
/// slices not covering every device, originations naming devices outside
/// the topology) instead of panicking.
pub fn try_simulate(
    topo: &Topology,
    asns: &[u32],
    tiers: &[u8],
    originations: &[Origination],
    config: &BgpConfig,
) -> Result<BgpRibs, RibError> {
    let _span = netobs::span!("bgp_simulate");
    let n = topo.device_count();
    for (what, len) in [("asns", asns.len()), ("tiers", tiers.len())] {
        if len != n {
            return Err(RibError::LengthMismatch {
                what,
                got: len,
                expected: n,
            });
        }
    }
    for o in originations {
        if o.device.0 as usize >= n {
            return Err(RibError::UnknownDevice {
                device: o.device,
                device_count: n,
                context: "origination",
            });
        }
    }
    let max_rounds = if config.max_rounds == 0 {
        n + 2
    } else {
        config.max_rounds
    };

    // Group originations by prefix for acceptance checks.
    let mut by_prefix: BTreeMap<Prefix, Vec<&Origination>> = BTreeMap::new();
    for o in originations {
        by_prefix.entry(o.prefix).or_default().push(o);
    }
    let accepts = |prefix: &Prefix, d: DeviceId| -> bool {
        let os = &by_prefix[prefix];
        os.iter().any(|o| match o.scope {
            Scope::All => true,
            Scope::MinTier(t) => tiers[d.0 as usize] >= t,
        }) && !os.iter().any(|o| o.blocked.contains(&d))
    };

    // Loc-RIBs, seeded with local originations.
    let mut ribs: Vec<BTreeMap<Prefix, BgpRoute>> = vec![BTreeMap::new(); n];
    for o in originations {
        if by_prefix[&o.prefix]
            .iter()
            .any(|oo| oo.blocked.contains(&o.device))
        {
            continue;
        }
        ribs[o.device.0 as usize].insert(
            o.prefix,
            BgpRoute {
                as_path: Vec::new(),
                next_hops: Vec::new(),
            },
        );
    }

    let mut rounds = 0;
    for _round in 0..max_rounds {
        rounds += 1;
        let mut changed = false;
        // Synchronous: everyone advertises the *previous* round's best.
        let snapshot = ribs.clone();
        for (device, _) in topo.devices() {
            let di = device.0 as usize;
            let my_asn = asns[di];
            // Gather candidate routes per prefix from all neighbors.
            let mut candidates: BTreeMap<Prefix, Vec<(Vec<u32>, IfaceId)>> = BTreeMap::new();
            for (iface, neigh) in topo.neighbors(device) {
                for (prefix, route) in &snapshot[neigh.0 as usize] {
                    if !accepts(prefix, device) {
                        continue;
                    }
                    // The neighbor exports its best path with its own ASN
                    // prepended.
                    let mut path = Vec::with_capacity(route.as_path.len() + 1);
                    path.push(asns[neigh.0 as usize]);
                    path.extend_from_slice(&route.as_path);
                    // Loop prevention: reject paths containing our ASN
                    // unless allow-as-in is configured.
                    if !config.allow_as_in && path.contains(&my_asn) {
                        continue;
                    }
                    candidates.entry(*prefix).or_default().push((path, iface));
                }
            }
            for (prefix, cands) in candidates {
                // Keep local originations (path length 0 always wins).
                if ribs[di]
                    .get(&prefix)
                    .map(|r| r.as_path.is_empty())
                    .unwrap_or(false)
                {
                    continue;
                }
                let best_len = cands.iter().map(|(p, _)| p.len()).min().unwrap();
                let mut next_hops: Vec<IfaceId> = cands
                    .iter()
                    .filter(|(p, _)| p.len() == best_len)
                    .map(|&(_, i)| i)
                    .collect();
                next_hops.sort();
                next_hops.dedup();
                let as_path = cands
                    .iter()
                    .find(|(p, _)| p.len() == best_len)
                    .unwrap()
                    .0
                    .clone();
                let new = BgpRoute { as_path, next_hops };
                let replace = match ribs[di].get(&prefix) {
                    None => true,
                    Some(old) => {
                        new.path_len() < old.path_len()
                            || (new.path_len() == old.path_len() && new != *old)
                    }
                };
                if replace {
                    ribs[di].insert(prefix, new);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(BgpRibs { ribs, rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::rule::RouteClass;
    use netmodel::topology::{IfaceKind, Role};

    /// A 2-tier fabric: 2 ToRs × 2 spines, one prefix per ToR.
    fn fabric() -> (Topology, Vec<DeviceId>, Vec<DeviceId>, Vec<Origination>) {
        let mut t = Topology::new();
        let tors = vec![
            t.add_device("tor1", Role::Tor),
            t.add_device("tor2", Role::Tor),
        ];
        let spines = vec![
            t.add_device("spine1", Role::Spine),
            t.add_device("spine2", Role::Spine),
        ];
        let hosts: Vec<IfaceId> = tors
            .iter()
            .map(|&d| t.add_iface(d, "hosts", IfaceKind::Host))
            .collect();
        for &tor in &tors {
            for &s in &spines {
                t.add_link(tor, s);
            }
        }
        let origs = vec![
            Origination::new(
                tors[0],
                "10.0.1.0/24".parse().unwrap(),
                RouteClass::HostSubnet,
                Some(hosts[0]),
                Scope::All,
            ),
            Origination::new(
                tors[1],
                "10.0.2.0/24".parse().unwrap(),
                RouteClass::HostSubnet,
                Some(hosts[1]),
                Scope::All,
            ),
        ];
        (t, tors, spines, origs)
    }

    #[test]
    fn converges_in_diameter_rounds_with_shortest_paths() {
        let (t, tors, spines, origs) = fabric();
        let asns = vec![65001, 65002, 64700, 64700];
        let tiers = vec![0, 0, 2, 2];
        let ribs = simulate(&t, &asns, &tiers, &origs, &BgpConfig::default());
        // tor1 reaches tor2's prefix over both spines with path len 2.
        let p2: Prefix = "10.0.2.0/24".parse().unwrap();
        let r = ribs.route(tors[0], &p2).expect("route must exist");
        assert_eq!(r.path_len(), 2);
        assert_eq!(r.next_hops.len(), 2);
        assert_eq!(r.as_path, vec![64700, 65002]);
        // Spines have 1-hop routes.
        let rs = ribs.route(spines[0], &p2).unwrap();
        assert_eq!(rs.path_len(), 1);
        // Convergence well under the bound.
        assert!(ribs.rounds <= 4, "rounds = {}", ribs.rounds);
    }

    #[test]
    fn without_allow_as_in_tier_reentry_is_rejected() {
        // tor1 - spineA - hub - spineB - tor2, spines share an ASN: the
        // cross-side route re-enters the spine ASN and dies without
        // allow-as-in.
        let mut t = Topology::new();
        let tor1 = t.add_device("tor1", Role::Tor);
        let sa = t.add_device("spineA", Role::Spine);
        let hub = t.add_device("hub", Role::RegionalHub);
        let sb = t.add_device("spineB", Role::Spine);
        let tor2 = t.add_device("tor2", Role::Tor);
        let h2 = t.add_iface(tor2, "hosts", IfaceKind::Host);
        t.add_link(tor1, sa);
        t.add_link(sa, hub);
        t.add_link(hub, sb);
        t.add_link(sb, tor2);
        let p: Prefix = "10.0.2.0/24".parse().unwrap();
        let origs = vec![Origination::new(
            tor2,
            p,
            RouteClass::HostSubnet,
            Some(h2),
            Scope::All,
        )];
        let asns = vec![65001, 64700, 64600, 64700, 65002];
        let tiers = vec![0, 2, 3, 2, 0];

        let with = simulate(&t, &asns, &tiers, &origs, &BgpConfig::default());
        assert!(
            with.route(tor1, &p).is_some(),
            "allow-as-in must admit the route"
        );
        assert_eq!(with.route(tor1, &p).unwrap().path_len(), 4);

        let without = simulate(
            &t,
            &asns,
            &tiers,
            &origs,
            &BgpConfig {
                allow_as_in: false,
                ..BgpConfig::default()
            },
        );
        // spineA's import sees path [hub, spineB(64700), tor2] — fine for
        // spineA? It contains 64700 == spineA's ASN → rejected. So tor1
        // never hears about the prefix.
        assert!(without.route(tor1, &p).is_none());
        assert!(without.route(sa, &p).is_none());
    }

    #[test]
    fn scoped_prefixes_respect_tiers() {
        let (t, tors, spines, mut origs) = fabric();
        // A WAN-ish prefix originated at spine1, scoped to tier >= 2.
        origs.push(Origination::new(
            spines[0],
            "52.0.0.0/16".parse().unwrap(),
            RouteClass::Wan,
            None,
            Scope::MinTier(2),
        ));
        let asns = vec![65001, 65002, 64700, 64700];
        let tiers = vec![0, 0, 2, 2];
        let ribs = simulate(&t, &asns, &tiers, &origs, &BgpConfig::default());
        let w: Prefix = "52.0.0.0/16".parse().unwrap();
        for &tor in &tors {
            assert!(
                ribs.route(tor, &w).is_none(),
                "ToRs must not accept scoped WAN routes"
            );
        }
        // spine2 can't learn it either: the only path is via a ToR, which
        // doesn't accept (and therefore doesn't re-advertise) it.
        assert!(ribs.route(spines[1], &w).is_none());
    }

    #[test]
    fn malformed_attribute_slices_are_errors_not_panics() {
        // Previously panicking input: `simulate` asserted on the slice
        // lengths, so a caller passing per-device attributes for the
        // wrong topology died with a bare assert_eq. `try_simulate`
        // reports which slice is short and what length it needs.
        let (t, _tors, _spines, origs) = fabric();
        let err =
            try_simulate(&t, &[65001], &[0, 0, 2, 2], &origs, &BgpConfig::default()).unwrap_err();
        assert_eq!(
            err,
            crate::rib::RibError::LengthMismatch {
                what: "asns",
                got: 1,
                expected: 4
            }
        );
        let err = try_simulate(
            &t,
            &[65001, 65002, 64700, 64700],
            &[],
            &origs,
            &BgpConfig::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("tiers"), "{err}");
    }

    #[test]
    fn out_of_range_origination_is_an_error() {
        let (t, _tors, _spines, mut origs) = fabric();
        origs[0].device = DeviceId(40);
        let err = try_simulate(
            &t,
            &[65001, 65002, 64700, 64700],
            &[0, 0, 2, 2],
            &origs,
            &BgpConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, crate::rib::RibError::UnknownDevice { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn blocked_devices_neither_install_nor_propagate() {
        let (t, tors, spines, mut origs) = fabric();
        // tor2's prefix blocked at spine1.
        origs[1].blocked.push(spines[0]);
        let asns = vec![65001, 65002, 64700, 64700];
        let tiers = vec![0, 0, 2, 2];
        let ribs = simulate(&t, &asns, &tiers, &origs, &BgpConfig::default());
        let p2: Prefix = "10.0.2.0/24".parse().unwrap();
        assert!(ribs.route(spines[0], &p2).is_none());
        // tor1 still gets the route, but only via spine2.
        let r = ribs.route(tors[0], &p2).unwrap();
        assert_eq!(r.next_hops.len(), 1);
    }
}
