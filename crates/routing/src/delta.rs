//! Rule-delta entry points for long-lived serving.
//!
//! Batch compilation goes config → [`crate::RibBuilder`] → [`Network`]
//! once. A serving engine instead receives a stream of FIB changes —
//! a route programmed or withdrawn on one device — and needs those
//! changes applied to an already-built network with the same validation
//! discipline the builder has: every malformed delta is a named
//! [`RibError`], never a panic, because deltas arrive over the wire.
//!
//! The functions here only mutate the FIB; recomputing match sets and
//! covered sets for the touched device is the caller's job (the
//! coverage engine invalidates per device).

use netmodel::rule::Rule;
use netmodel::topology::DeviceId;
use netmodel::{Network, RuleId};

use crate::rib::RibError;

/// Insert `rule` on `device`, keeping the device's first-match order,
/// and return the id it landed on. Validates that the device exists and
/// that every interface the rule forwards out of belongs to the device.
pub fn apply_rule_insert(
    net: &mut Network,
    device: DeviceId,
    rule: Rule,
) -> Result<RuleId, RibError> {
    let topo = net.topology();
    if device.0 as usize >= topo.device_count() {
        return Err(RibError::UnknownDevice {
            device,
            device_count: topo.device_count(),
            context: "rule insert",
        });
    }
    for &iface in rule.action.out_ifaces() {
        if iface.0 as usize >= topo.iface_count() || topo.iface(iface).device != device {
            return Err(RibError::BadIface {
                iface,
                device,
                context: "rule insert",
            });
        }
    }
    if let Some(iface) = rule.matches.in_iface {
        if iface.0 as usize >= topo.iface_count() || topo.iface(iface).device != device {
            return Err(RibError::BadIface {
                iface,
                device,
                context: "rule insert (ingress match)",
            });
        }
    }
    Ok(net.insert_rule(device, rule))
}

/// Withdraw the rule `id`, returning the removed rule. Validates that
/// the device exists and the index is inside its table.
pub fn apply_rule_withdraw(net: &mut Network, id: RuleId) -> Result<Rule, RibError> {
    let topo = net.topology();
    if id.device.0 as usize >= topo.device_count() {
        return Err(RibError::UnknownDevice {
            device: id.device,
            device_count: topo.device_count(),
            context: "rule withdraw",
        });
    }
    let len = net.device_rules(id.device).len();
    if id.index as usize >= len {
        return Err(RibError::BadRule {
            id,
            table_len: len,
            context: "rule withdraw",
        });
    }
    Ok(net.withdraw_rule(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::rule::RouteClass;
    use netmodel::topology::{Role, Topology};
    use netmodel::Prefix;

    fn two_device_net() -> (Network, DeviceId, DeviceId, netmodel::IfaceId) {
        let mut t = Topology::new();
        let a = t.add_device("a", Role::Tor);
        let b = t.add_device("b", Role::Spine);
        let (ai, _bi) = t.add_link(a, b);
        let mut n = Network::new(t);
        n.add_rule(
            a,
            Rule::forward(Prefix::v4_default(), vec![ai], RouteClass::StaticDefault),
        );
        n.finalize();
        (n, a, b, ai)
    }

    #[test]
    fn valid_insert_and_withdraw_roundtrip() {
        let (mut n, a, _, ai) = two_device_net();
        let rule = Rule::forward("10.0.0.0/24".parse().unwrap(), vec![ai], RouteClass::Other);
        let id = apply_rule_insert(&mut n, a, rule).unwrap();
        assert_eq!(id.device, a);
        assert_eq!(n.device_rules(a).len(), 2);
        let back = apply_rule_withdraw(&mut n, id).unwrap();
        assert_eq!(back.matches.dst.unwrap().len(), 24);
        assert_eq!(n.device_rules(a).len(), 1);
    }

    #[test]
    fn insert_rejects_unknown_device_and_foreign_iface() {
        let (mut n, _, b, ai) = two_device_net();
        let rule = Rule::forward("10.0.0.0/24".parse().unwrap(), vec![ai], RouteClass::Other);
        // `ai` belongs to device a, not b.
        assert!(matches!(
            apply_rule_insert(&mut n, b, rule.clone()),
            Err(RibError::BadIface { .. })
        ));
        assert!(matches!(
            apply_rule_insert(&mut n, DeviceId(99), rule),
            Err(RibError::UnknownDevice { .. })
        ));
    }

    #[test]
    fn withdraw_rejects_out_of_range_index() {
        let (mut n, a, _, _) = two_device_net();
        let err = apply_rule_withdraw(
            &mut n,
            RuleId {
                device: a,
                index: 7,
            },
        )
        .unwrap_err();
        assert!(matches!(err, RibError::BadRule { table_len: 1, .. }));
        assert!(err.to_string().contains("r0.7"));
    }
}
