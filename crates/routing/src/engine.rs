//! Delta-aware incremental eBGP re-convergence.
//!
//! [`RoutingEngine`] keeps the eBGP fixpoint *resident*: per-prefix BFS
//! distance vectors (the frontier bookkeeping of [`RibBuilder::try_build`])
//! plus the folded FIB entry installed for every `(device, prefix)` key.
//! Topology deltas — [`TopologyDelta::LinkDown`]/[`TopologyDelta::LinkUp`]
//! and device counterparts — re-converge only the affected subtrees:
//!
//! * **deletion** runs the two-phase shortest-path repair (identify the
//!   orphaned region seeded from the dead element's BFS children, then
//!   re-relax it from the surviving frontier with a bounded Dijkstra),
//! * **addition** runs a decrease-only relaxation seeded from the revived
//!   element's endpoints (and restored origination seeds).
//!
//! Devices whose distance or ECMP set changed are *re-folded* — the
//! admin-distance merge of [`RibBuilder::try_build`] is replayed for just
//! their `(device, prefix)` keys — and the resulting rule edits are
//! applied to the live [`Network`] at canonical batch positions
//! ([`Network::insert_rule_canonical`]), so the incremental FIB stays
//! bit-identical to a from-scratch rebuild of the degraded topology
//! ([`RoutingEngine::full_rebuild`] is exactly that, and the differential
//! tests gate on it). The per-device edits are reported as a [`FibDiff`]
//! so coverage engines can invalidate exactly the touched device shards.
//!
//! Validation follows `routing::delta`'s [`RibError`] discipline: every
//! delta is checked against the topology (unknown device/link) and the
//! failure state (double-down, not-down) before any state is mutated.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use netmodel::provenance::{ConfigDb, Construct};
use netmodel::rule::{Action, RouteClass, Rule};
use netmodel::topology::{DeviceId, IfaceId, Topology};
use netmodel::{MatchFields, Network, Prefix, RuleId};

use crate::rib::{Origination, RibBuilder, RibError, StaticRoute, StaticTarget};

/// A topology failure/recovery event applied to the resident engine.
///
/// Links are addressed by their device pair: all parallel links between
/// the two devices toggle together (a fat-tree has exactly one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyDelta {
    /// Take every link between `a` and `b` down.
    LinkDown {
        /// One endpoint device.
        a: DeviceId,
        /// The other endpoint device.
        b: DeviceId,
    },
    /// Bring every downed link between `a` and `b` back up.
    LinkUp {
        /// One endpoint device.
        a: DeviceId,
        /// The other endpoint device.
        b: DeviceId,
    },
    /// Take a whole device down: its links go dead and its originations
    /// and static routes are withdrawn until it comes back.
    DeviceDown {
        /// The failing device.
        device: DeviceId,
    },
    /// Bring a downed device back up.
    DeviceUp {
        /// The recovering device.
        device: DeviceId,
    },
}

/// One FIB entry edit produced by re-convergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FibChange {
    /// Device whose table changed.
    pub device: DeviceId,
    /// Destination prefix of the managed entry.
    pub prefix: Prefix,
    /// The rule previously installed for the key (`None` = newly routed).
    pub old: Option<Rule>,
    /// The rule now installed for the key (`None` = withdrawn).
    pub new: Option<Rule>,
}

/// The per-device FIB diff of one applied [`TopologyDelta`], in
/// `(device, prefix)` order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FibDiff {
    /// Every entry edit, ordered by `(device, prefix)`.
    pub changes: Vec<FibChange>,
}

impl FibDiff {
    /// The touched devices, deduplicated, in id order — the unit of
    /// coverage invalidation.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self.changes.iter().map(|c| c.device).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Whether re-convergence changed nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of entry edits.
    pub fn len(&self) -> usize {
        self.changes.len()
    }
}

/// A point-to-point link derived from the topology's peered iface pairs.
#[derive(Clone, Copy, Debug)]
struct Link {
    a: DeviceId,
    ai: IfaceId,
    b: DeviceId,
    bi: IfaceId,
}

/// One adjacency entry: out-iface, neighbor, owning link.
#[derive(Clone, Copy, Debug)]
struct Adj {
    iface: IfaceId,
    peer: u32,
    link: usize,
}

/// Resident BFS state of one anycast prefix group.
#[derive(Clone, Debug)]
struct Group {
    prefix: Prefix,
    /// Indexes into `originations`, in origination order.
    origins: Vec<usize>,
    /// FIB class stamped on every rule of the group (first origination).
    class: RouteClass,
    /// Per-device scope/blocked acceptance (static per group).
    accepts: Vec<bool>,
    /// Seed devices (non-blocked originators), deduplicated, in order.
    seeds: Vec<u32>,
    /// Hop distance per device; `u32::MAX` = unreachable.
    dist: Vec<u32>,
}

/// The resident incremental routing engine. See the module docs.
pub struct RoutingEngine {
    topo: Topology,
    tiers: Vec<u8>,
    asns: Vec<u32>,
    originations: Vec<Origination>,
    statics: Vec<StaticRoute>,
    links: Vec<Link>,
    /// Per-iface owning link (`None` for host/loopback/external ifaces).
    iface_link: Vec<Option<usize>>,
    /// Per-device adjacency in iface creation order (matches
    /// [`Topology::neighbors`]).
    adj: Vec<Vec<Adj>>,
    link_down: Vec<bool>,
    device_down: Vec<bool>,
    groups: Vec<Group>,
    group_of: BTreeMap<Prefix, usize>,
    /// Static routes per `(device, prefix)` key, in config order.
    static_keys: BTreeMap<(u32, Prefix), Vec<usize>>,
    /// Static indexes per device.
    statics_by_device: Vec<Vec<usize>>,
    /// `(device, prefix)` keys whose statics reference an iface.
    statics_by_iface: BTreeMap<u32, Vec<(u32, Prefix)>>,
    /// The rule currently installed per managed `(device, prefix)` key.
    installed: BTreeMap<(u32, Prefix), Rule>,
    /// Monotone counters surfaced as `routing.reconverge.*` gauges.
    reconverge_count: u64,
    devices_touched_total: u64,
    rules_changed_total: u64,
}

impl RoutingEngine {
    /// Build the engine plus the compiled healthy-state [`Network`] from
    /// a validated control-plane description. Called through
    /// [`RibBuilder::into_engine`]; the produced network is bit-identical
    /// to [`RibBuilder::try_build`] on the same description.
    pub(crate) fn new_internal(
        topo: Topology,
        tiers: Vec<u8>,
        asns: Vec<u32>,
        originations: Vec<Origination>,
        statics: Vec<StaticRoute>,
    ) -> (RoutingEngine, Network) {
        let n = topo.device_count();
        let mut tiers = tiers;
        let mut asns = asns;
        tiers.resize(n.max(tiers.len()), 0);
        asns.resize(n.max(asns.len()), 0);

        // Enumerate links from peered iface pairs, in iface id order.
        let mut links = Vec::new();
        let mut iface_link = vec![None; topo.iface_count()];
        for (id, iface) in topo.ifaces() {
            if let Some(peer) = iface.peer {
                if id.0 < peer.0 {
                    let l = links.len();
                    links.push(Link {
                        a: iface.device,
                        ai: id,
                        b: topo.iface(peer).device,
                        bi: peer,
                    });
                    iface_link[id.0 as usize] = Some(l);
                    iface_link[peer.0 as usize] = Some(l);
                }
            }
        }
        let adj: Vec<Vec<Adj>> = (0..n)
            .map(|d| {
                topo.neighbors(DeviceId(d as u32))
                    .into_iter()
                    .map(|(iface, peer)| Adj {
                        iface,
                        peer: peer.0,
                        link: iface_link[iface.0 as usize].expect("peered iface belongs to a link"),
                    })
                    .collect()
            })
            .collect();

        // Static route indexes.
        let mut static_keys: BTreeMap<(u32, Prefix), Vec<usize>> = BTreeMap::new();
        let mut statics_by_device = vec![Vec::new(); n];
        let mut statics_by_iface: BTreeMap<u32, Vec<(u32, Prefix)>> = BTreeMap::new();
        for (si, s) in statics.iter().enumerate() {
            let key = (s.device.0, s.prefix);
            static_keys.entry(key).or_default().push(si);
            statics_by_device[s.device.0 as usize].push(si);
            if let StaticTarget::Ifaces(outs) = &s.target {
                for &i in outs {
                    statics_by_iface.entry(i.0).or_default().push(key);
                }
            }
        }

        // Prefix groups with their initial BFS distances — the same
        // grouping, seeding, and acceptance as `RibBuilder::try_build`.
        let mut group_of = BTreeMap::new();
        let mut by_prefix: BTreeMap<Prefix, Vec<usize>> = BTreeMap::new();
        for (oi, o) in originations.iter().enumerate() {
            by_prefix.entry(o.prefix).or_default().push(oi);
        }
        let mut groups = Vec::new();
        for (prefix, origin_idxs) in by_prefix {
            let accepts: Vec<bool> = (0..n)
                .map(|d| {
                    let dev = DeviceId(d as u32);
                    let tier = tiers[d];
                    origin_idxs
                        .iter()
                        .any(|&oi| originations[oi].scope.accepts(tier))
                        && !origin_idxs
                            .iter()
                            .any(|&oi| originations[oi].blocked.contains(&dev))
                })
                .collect();
            let mut seeds = Vec::new();
            for &oi in &origin_idxs {
                let d = originations[oi].device.0;
                let blocked = origin_idxs
                    .iter()
                    .any(|&oo| originations[oo].blocked.contains(&DeviceId(d)));
                if !blocked && !seeds.contains(&d) {
                    seeds.push(d);
                }
            }
            let class = originations[origin_idxs[0]].class;
            group_of.insert(prefix, groups.len());
            groups.push(Group {
                prefix,
                origins: origin_idxs,
                class,
                accepts,
                seeds,
                dist: vec![u32::MAX; n],
            });
        }

        let mut engine = RoutingEngine {
            topo,
            tiers,
            asns,
            originations,
            statics,
            links,
            iface_link,
            adj,
            link_down: Vec::new(),
            device_down: vec![false; n],
            groups,
            group_of,
            static_keys,
            statics_by_device,
            statics_by_iface,
            installed: BTreeMap::new(),
            reconverge_count: 0,
            devices_touched_total: 0,
            rules_changed_total: 0,
        };
        engine.link_down = vec![false; engine.links.len()];

        // Initial multi-source BFS per group (everything is live).
        for gi in 0..engine.groups.len() {
            let mut dist = vec![u32::MAX; n];
            let mut q = VecDeque::new();
            for &s in &engine.groups[gi].seeds {
                if dist[s as usize] == u32::MAX {
                    dist[s as usize] = 0;
                    q.push_back(s);
                }
            }
            while let Some(v) = q.pop_front() {
                let dv = dist[v as usize];
                for a in &engine.adj[v as usize] {
                    let u = a.peer as usize;
                    if dist[u] == u32::MAX && engine.groups[gi].accepts[u] {
                        dist[u] = dv + 1;
                        q.push_back(a.peer);
                    }
                }
            }
            engine.groups[gi].dist = dist;
        }

        // Fold every key and compile the network in key order — the same
        // iteration `try_build` performs over its `best` map.
        let mut keys: BTreeSet<(u32, Prefix)> = engine.static_keys.keys().copied().collect();
        for g in &engine.groups {
            for d in 0..n {
                if g.dist[d] != u32::MAX {
                    keys.insert((d as u32, g.prefix));
                }
            }
        }
        for key in keys {
            if let Some(rule) = engine.fold_key(key) {
                engine.installed.insert(key, rule);
            }
        }
        let mut net = Network::new(engine.topo.clone());
        for (&(device, _), rule) in &engine.installed {
            net.add_rule(DeviceId(device), rule.clone());
        }
        net.finalize();
        (engine, net)
    }

    /// Number of point-to-point links in the topology.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Endpoint devices of every link, in link order.
    pub fn link_endpoints(&self) -> Vec<(DeviceId, DeviceId)> {
        self.links.iter().map(|l| (l.a, l.b)).collect()
    }

    /// Whether every link between the two devices is currently down.
    pub fn is_link_down(&self, a: DeviceId, b: DeviceId) -> bool {
        let ls = self.links_between(a, b);
        !ls.is_empty() && ls.iter().all(|&l| self.link_down[l])
    }

    /// Whether the device is currently down.
    pub fn is_device_down(&self, device: DeviceId) -> bool {
        self.device_down
            .get(device.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The base (healthy) topology the engine was built over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The base topology with every currently-dead link severed — what
    /// the network looks like under the present failure state.
    pub fn degraded_topology(&self) -> Topology {
        let mut topo = self.topo.clone();
        for (l, link) in self.links.iter().enumerate() {
            if !self.link_live(l) {
                topo.sever_link(link.ai, link.bi);
            }
        }
        topo
    }

    /// The originations surviving the present failure state (down
    /// devices advertise nothing).
    pub fn live_originations(&self) -> Vec<Origination> {
        self.originations
            .iter()
            .filter(|o| !self.device_down[o.device.0 as usize])
            .cloned()
            .collect()
    }

    /// Per-device tiers (length = device count).
    pub fn tiers(&self) -> &[u8] {
        &self.tiers
    }

    /// Per-device ASNs (length = device count).
    pub fn asns(&self) -> &[u32] {
        &self.asns
    }

    /// The control-plane description of the current failure state, as a
    /// fresh [`RibBuilder`]: every dead link severed, down devices'
    /// originations and statics dropped, static next-hops over dead
    /// links pruned. Building it from scratch is the differential
    /// reference for the incremental path — for FIBs
    /// ([`RoutingEngine::full_rebuild`]) and for provenance
    /// ([`RibBuilder::into_engine`] + [`RoutingEngine::config_db`]).
    pub fn degraded_builder(&self) -> RibBuilder {
        let mut rb = RibBuilder::new(self.degraded_topology());
        for d in 0..self.topo.device_count() {
            rb.set_tier(DeviceId(d as u32), self.tiers[d]);
            rb.set_asn(DeviceId(d as u32), self.asns[d]);
        }
        for o in self.live_originations() {
            rb.originate(o);
        }
        for s in &self.statics {
            if self.device_down[s.device.0 as usize] {
                continue;
            }
            match &s.target {
                StaticTarget::Null => rb.add_static(s.clone()),
                StaticTarget::Ifaces(outs) => {
                    if outs.is_empty() {
                        rb.add_static(s.clone());
                        continue;
                    }
                    let live: Vec<IfaceId> = outs
                        .iter()
                        .copied()
                        .filter(|&i| self.iface_live(i))
                        .collect();
                    if !live.is_empty() {
                        rb.add_static(StaticRoute {
                            device: s.device,
                            prefix: s.prefix,
                            target: StaticTarget::Ifaces(live),
                            class: s.class,
                        });
                    }
                }
            }
        }
        rb
    }

    /// Rebuild the FIBs of the current failure state from scratch
    /// ([`RoutingEngine::degraded_builder`] + [`RibBuilder::try_build`]).
    /// This is the reference the incremental path must be bit-identical
    /// to — and the "rebuild" leg of the scenario benchmarks.
    pub fn full_rebuild(&self) -> Result<Network, RibError> {
        self.degraded_builder().try_build()
    }

    /// Apply a failure/recovery delta, re-converge incrementally, edit
    /// `net` in place, and return the FIB diff. `net` must be the network
    /// this engine built (or last edited) — managed entries are located
    /// by content.
    ///
    /// # Examples
    ///
    /// ```
    /// use netmodel::rule::RouteClass;
    /// use netmodel::topology::{IfaceKind, Role, Topology};
    /// use routing::{Origination, RibBuilder, Scope, TopologyDelta};
    ///
    /// let mut topo = Topology::new();
    /// let tor = topo.add_device("tor", Role::Tor);
    /// let s1 = topo.add_device("s1", Role::Spine);
    /// let s2 = topo.add_device("s2", Role::Spine);
    /// let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
    /// topo.add_link(tor, s1);
    /// topo.add_link(tor, s2);
    /// let mut rb = RibBuilder::new(topo);
    /// rb.originate(Origination::new(
    ///     tor,
    ///     "10.0.1.0/24".parse().unwrap(),
    ///     RouteClass::HostSubnet,
    ///     Some(hosts),
    ///     Scope::All,
    /// ));
    /// let (mut engine, mut net) = rb.into_engine().unwrap();
    ///
    /// // Fail tor–s1: only s1 loses its route towards the prefix, and
    /// // the diff names exactly the devices whose tables changed.
    /// let diff = engine
    ///     .apply(&mut net, &TopologyDelta::LinkDown { a: tor, b: s1 })
    ///     .unwrap();
    /// assert_eq!(diff.devices(), vec![s1]);
    /// assert!(net.device_rules(s1).is_empty());
    /// ```
    pub fn apply(&mut self, net: &mut Network, delta: &TopologyDelta) -> Result<FibDiff, RibError> {
        let _span = netobs::span!("reconverge");
        let n = self.topo.device_count();
        let check_dev = |device: DeviceId| -> Result<(), RibError> {
            if (device.0 as usize) < n {
                Ok(())
            } else {
                Err(RibError::UnknownDevice {
                    device,
                    device_count: n,
                    context: "topology delta",
                })
            }
        };

        // Validate and update failure state; collect the toggled links
        // and the per-group repair work.
        let mut refold: BTreeSet<(u32, Prefix)> = BTreeSet::new();
        let toggled: Vec<usize>;
        enum Repair {
            Delete { downed: Option<u32> },
            Add { revived: Option<u32> },
        }
        let repair;
        match *delta {
            TopologyDelta::LinkDown { a, b } => {
                check_dev(a)?;
                check_dev(b)?;
                let ls = self.links_between(a, b);
                if ls.is_empty() {
                    return Err(RibError::UnknownLink { a, b });
                }
                let targets: Vec<usize> = ls.into_iter().filter(|&l| !self.link_down[l]).collect();
                if targets.is_empty() {
                    return Err(RibError::LinkAlreadyDown { a, b });
                }
                // Only links that were live actually change reachability.
                let removed: Vec<usize> = targets
                    .iter()
                    .copied()
                    .filter(|&l| self.link_live(l))
                    .collect();
                for &l in &targets {
                    self.link_down[l] = true;
                }
                toggled = removed;
                repair = Repair::Delete { downed: None };
            }
            TopologyDelta::LinkUp { a, b } => {
                check_dev(a)?;
                check_dev(b)?;
                let ls = self.links_between(a, b);
                if ls.is_empty() {
                    return Err(RibError::UnknownLink { a, b });
                }
                let targets: Vec<usize> = ls.into_iter().filter(|&l| self.link_down[l]).collect();
                if targets.is_empty() {
                    return Err(RibError::LinkNotDown { a, b });
                }
                for &l in &targets {
                    self.link_down[l] = false;
                }
                let added: Vec<usize> =
                    targets.into_iter().filter(|&l| self.link_live(l)).collect();
                toggled = added;
                repair = Repair::Add { revived: None };
            }
            TopologyDelta::DeviceDown { device } => {
                check_dev(device)?;
                let d = device.0 as usize;
                if self.device_down[d] {
                    return Err(RibError::DeviceAlreadyDown { device });
                }
                let removed: Vec<usize> = self.adj[d]
                    .iter()
                    .filter(|a| self.link_live(a.link))
                    .map(|a| a.link)
                    .collect();
                // Every managed entry on the device is withdrawn.
                for (&key, _) in self.installed.iter() {
                    if key.0 == device.0 {
                        refold.insert(key);
                    }
                }
                self.device_down[d] = true;
                toggled = removed;
                repair = Repair::Delete {
                    downed: Some(device.0),
                };
            }
            TopologyDelta::DeviceUp { device } => {
                check_dev(device)?;
                let d = device.0 as usize;
                if !self.device_down[d] {
                    return Err(RibError::DeviceNotDown { device });
                }
                self.device_down[d] = false;
                let added: Vec<usize> = self.adj[d]
                    .iter()
                    .filter(|a| self.link_live(a.link))
                    .map(|a| a.link)
                    .collect();
                // The device's statics come back even if no BGP route
                // reaches it.
                for &si in &self.statics_by_device[d] {
                    refold.insert((self.statics[si].device.0, self.statics[si].prefix));
                }
                toggled = added;
                repair = Repair::Add {
                    revived: Some(device.0),
                };
            }
        }

        // Statics whose next-hop set crosses a toggled link re-fold.
        for &l in &toggled {
            for iface in [self.links[l].ai, self.links[l].bi] {
                if let Some(keys) = self.statics_by_iface.get(&iface.0) {
                    for &key in keys {
                        refold.insert(key);
                    }
                }
            }
        }

        // Per-group incremental repair.
        for gi in 0..self.groups.len() {
            let changed = match repair {
                Repair::Delete { downed } => self.repair_delete(gi, &toggled, downed),
                Repair::Add { revived } => self.repair_add(gi, &toggled, revived),
            };
            let prefix = self.groups[gi].prefix;
            // Changed devices and their live neighbors re-fold (a
            // neighbor's ECMP set can change without its distance
            // moving).
            for &v in &changed {
                refold.insert((v, prefix));
                for a in &self.adj[v as usize] {
                    if self.link_live(a.link) {
                        refold.insert((a.peer, prefix));
                    }
                }
            }
            // Toggled-link endpoints re-fold whenever the group reaches
            // them: an endpoint can gain or lose an ECMP leg with no
            // distance change anywhere.
            for &l in &toggled {
                let (x, y) = (self.links[l].a.0, self.links[l].b.0);
                let g = &self.groups[gi];
                if g.dist[x as usize] != u32::MAX || g.dist[y as usize] != u32::MAX {
                    refold.insert((x, prefix));
                    refold.insert((y, prefix));
                }
            }
        }

        // Re-fold and edit the network.
        let mut diff = FibDiff::default();
        for key in refold {
            let new = self.fold_key(key);
            let old = self.installed.get(&key).cloned();
            if old == new {
                continue;
            }
            let device = DeviceId(key.0);
            if let Some(o) = &old {
                let index = net
                    .device_rules(device)
                    .iter()
                    .position(|r| r == o)
                    .expect("engine-managed rule present in the network")
                    as u32;
                net.withdraw_rule(RuleId { device, index });
                self.installed.remove(&key);
            }
            if let Some(nr) = &new {
                net.insert_rule_canonical(device, nr.clone());
                self.installed.insert(key, nr.clone());
            }
            diff.changes.push(FibChange {
                device,
                prefix: key.1,
                old,
                new,
            });
        }

        self.reconverge_count += 1;
        self.devices_touched_total += diff.devices().len() as u64;
        self.rules_changed_total += diff.changes.len() as u64;
        netobs::gauge("routing.reconverge.count", self.reconverge_count as f64);
        netobs::gauge(
            "routing.reconverge.devices_touched_total",
            self.devices_touched_total as f64,
        );
        netobs::gauge(
            "routing.reconverge.rules_changed_total",
            self.rules_changed_total as f64,
        );
        Ok(diff)
    }

    /// Whether a link currently carries traffic.
    fn link_live(&self, l: usize) -> bool {
        !self.link_down[l]
            && !self.device_down[self.links[l].a.0 as usize]
            && !self.device_down[self.links[l].b.0 as usize]
    }

    /// Whether an iface can be a next-hop: its link (if any) is live.
    /// The owning device's own state is the caller's concern.
    fn iface_live(&self, iface: IfaceId) -> bool {
        match self.iface_link[iface.0 as usize] {
            Some(l) => self.link_live(l),
            None => true,
        }
    }

    /// All link indexes between two devices (usually one).
    fn links_between(&self, a: DeviceId, b: DeviceId) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .map(|(i, _)| i)
            .collect()
    }

    /// Two-phase deletion repair for one group after `removed` edges
    /// died (plus, for a device failure, the downed device's own
    /// distance). Returns the devices whose distance changed.
    fn repair_delete(&mut self, gi: usize, removed: &[usize], downed: Option<u32>) -> Vec<u32> {
        let n = self.topo.device_count();
        // Phase 1: find the orphaned region. Seed with the BFS children
        // of every removed edge; a candidate survives if it still has a
        // live, unorphaned parent one step closer.
        let mut queue: VecDeque<u32> = VecDeque::new();
        {
            let dist = &self.groups[gi].dist;
            for &l in removed {
                let (x, y) = (self.links[l].a.0, self.links[l].b.0);
                for (u, v) in [(x, y), (y, x)] {
                    let (du, dv) = (dist[u as usize], dist[v as usize]);
                    if du != u32::MAX && dv != u32::MAX && dv == du + 1 {
                        queue.push_back(v);
                    }
                }
            }
        }
        let mut forced_changed = Vec::new();
        if let Some(d) = downed {
            // A downed seed device cannot keep distance 0; any other
            // finite distance is orphaned through the generic seeding
            // (all its live edges are in `removed`).
            if self.groups[gi].dist[d as usize] == 0 {
                self.groups[gi].dist[d as usize] = u32::MAX;
                forced_changed.push(d);
            }
        }
        let mut affected = vec![false; n];
        let mut n_affected = 0usize;
        while let Some(v) = queue.pop_front() {
            let vi = v as usize;
            let dv = self.groups[gi].dist[vi];
            if affected[vi] || dv == u32::MAX || dv == 0 {
                continue;
            }
            let survives = self.adj[vi].iter().any(|a| {
                let du = self.groups[gi].dist[a.peer as usize];
                self.link_live(a.link)
                    && !affected[a.peer as usize]
                    && du != u32::MAX
                    && du + 1 == dv
            });
            if survives {
                continue;
            }
            affected[vi] = true;
            n_affected += 1;
            for a in &self.adj[vi] {
                let du = self.groups[gi].dist[a.peer as usize];
                if self.link_live(a.link) && du != u32::MAX && du == dv + 1 {
                    queue.push_back(a.peer);
                }
            }
        }
        if n_affected == 0 {
            return forced_changed;
        }
        // Phase 2: re-relax the orphaned region from its surviving
        // boundary. Boundary distances are not uniform, so this is a
        // bounded Dijkstra, not a BFS.
        let mut old = Vec::with_capacity(n_affected);
        for (v, &hit) in affected.iter().enumerate() {
            if hit {
                old.push((v as u32, self.groups[gi].dist[v]));
                self.groups[gi].dist[v] = u32::MAX;
            }
        }
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        for &(v, _) in &old {
            if self.device_down[v as usize] {
                continue;
            }
            let mut best = u32::MAX;
            for a in &self.adj[v as usize] {
                let du = self.groups[gi].dist[a.peer as usize];
                if self.link_live(a.link) && du != u32::MAX {
                    best = best.min(du + 1);
                }
            }
            if best != u32::MAX {
                heap.push(Reverse((best, v)));
            }
        }
        while let Some(Reverse((d, v))) = heap.pop() {
            if d >= self.groups[gi].dist[v as usize] {
                continue;
            }
            self.groups[gi].dist[v as usize] = d;
            for a in &self.adj[v as usize] {
                let u = a.peer as usize;
                if self.link_live(a.link)
                    && affected[u]
                    && !self.device_down[u]
                    && self.groups[gi].dist[u] > d + 1
                {
                    heap.push(Reverse((d + 1, a.peer)));
                }
            }
        }
        let mut changed = forced_changed;
        for (v, before) in old {
            if self.groups[gi].dist[v as usize] != before {
                changed.push(v);
            }
        }
        changed
    }

    /// Decrease-only repair for one group after `added` edges came up
    /// (plus, for a device recovery, its restored origination seed).
    /// Returns the devices whose distance changed.
    fn repair_add(&mut self, gi: usize, added: &[usize], revived: Option<u32>) -> Vec<u32> {
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        if let Some(d) = revived {
            if self.groups[gi].seeds.contains(&d) {
                heap.push(Reverse((0, d)));
            }
        }
        {
            let dist = &self.groups[gi].dist;
            for &l in added {
                let (x, y) = (self.links[l].a.0, self.links[l].b.0);
                for (u, v) in [(x, y), (y, x)] {
                    if dist[u as usize] != u32::MAX {
                        heap.push(Reverse((dist[u as usize] + 1, v)));
                    }
                }
            }
        }
        let mut changed = Vec::new();
        while let Some(Reverse((d, v))) = heap.pop() {
            let vi = v as usize;
            if self.device_down[vi] {
                continue;
            }
            // Seeds (distance 0) are exempt from acceptance, exactly as
            // in the batch BFS seeding.
            if d > 0 && !self.groups[gi].accepts[vi] {
                continue;
            }
            if d >= self.groups[gi].dist[vi] {
                continue;
            }
            self.groups[gi].dist[vi] = d;
            changed.push(v);
            for a in &self.adj[vi] {
                if self.link_live(a.link) && self.groups[gi].dist[a.peer as usize] > d + 1 {
                    heap.push(Reverse((d + 1, a.peer)));
                }
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Replay `try_build`'s admin-distance merge for one `(device,
    /// prefix)` key under the current failure state: statics first (in
    /// config order, dead next-hops pruned), then the group's BGP
    /// candidate; lowest distance wins, first candidate wins ties.
    fn fold_key(&self, key: (u32, Prefix)) -> Option<Rule> {
        let (device, prefix) = key;
        if self.device_down[device as usize] {
            return None;
        }
        let mut best: Option<(u8, RouteClass, Action)> = None;
        let mut consider = |dist: u8, class: RouteClass, action: Action| match &best {
            Some((d, _, _)) if *d <= dist => {}
            _ => best = Some((dist, class, action)),
        };
        if let Some(sis) = self.static_keys.get(&key) {
            for &si in sis {
                let s = &self.statics[si];
                let dist = if s.class == RouteClass::Connected {
                    0
                } else {
                    1
                };
                match &s.target {
                    StaticTarget::Null => consider(dist, s.class, Action::Drop),
                    StaticTarget::Ifaces(outs) => {
                        if outs.is_empty() {
                            // Degenerate empty ECMP sets are preserved
                            // verbatim, as in the batch compile.
                            consider(dist, s.class, Action::Forward(Vec::new()));
                            continue;
                        }
                        let live: Vec<IfaceId> = outs
                            .iter()
                            .copied()
                            .filter(|&i| self.iface_live(i))
                            .collect();
                        if !live.is_empty() {
                            consider(dist, s.class, Action::Forward(live));
                        }
                    }
                }
            }
        }
        if let Some(&gi) = self.group_of.get(&prefix) {
            let g = &self.groups[gi];
            let du = g.dist[device as usize];
            if du == 0 {
                let outs: Vec<IfaceId> = g
                    .origins
                    .iter()
                    .map(|&oi| &self.originations[oi])
                    .filter(|o| o.device.0 == device)
                    .filter_map(|o| o.deliver)
                    .collect();
                if !outs.is_empty() {
                    consider(20, g.class, Action::Forward(outs));
                }
            } else if du != u32::MAX {
                let mut outs = Vec::new();
                for a in &self.adj[device as usize] {
                    if self.link_live(a.link) && g.dist[a.peer as usize] == du - 1 {
                        outs.push(a.iface);
                    }
                }
                debug_assert!(
                    !outs.is_empty(),
                    "BFS invariant: device d{device} at distance {du} from {prefix:?} \
                     must have a live neighbor one step closer"
                );
                consider(20, g.class, Action::Forward(outs));
            }
        }
        best.map(|(_, class, action)| Rule {
            matches: MatchFields::dst_prefix(prefix),
            action,
            class,
        })
    }

    // ----- provenance ------------------------------------------------------

    /// Whether a static route can currently contribute a FIB candidate:
    /// its device is up and it is a null route, a (preserved) degenerate
    /// empty ECMP set, or has at least one live next-hop. Mirrors both
    /// `fold_key`'s static arm and `full_rebuild`'s static pruning.
    fn static_applies(&self, si: usize) -> bool {
        let s = &self.statics[si];
        if self.device_down[s.device.0 as usize] {
            return false;
        }
        match &s.target {
            StaticTarget::Null => true,
            StaticTarget::Ifaces(outs) => {
                outs.is_empty() || outs.iter().any(|&i| self.iface_live(i))
            }
        }
    }

    /// Per-device provenance of one prefix group: for every device the
    /// group reaches, the constructs on its winning/ECMP announcement
    /// paths. Computed in increasing-distance order so each device unions
    /// `{session to parent} ∪ provenance(parent)` over its ECMP parents —
    /// the same edges `fold_key` turns into next-hops.
    fn group_provenance(&self, gi: usize) -> Vec<BTreeSet<Construct>> {
        let g = &self.groups[gi];
        let n = self.topo.device_count();
        let mut prov: Vec<BTreeSet<Construct>> = vec![BTreeSet::new(); n];
        let mut order: Vec<usize> = (0..n).filter(|&d| g.dist[d] != u32::MAX).collect();
        order.sort_by_key(|&d| g.dist[d]);
        for d in order {
            let du = g.dist[d];
            if du == 0 {
                prov[d].insert(Construct::Origination {
                    device: DeviceId(d as u32),
                    prefix: g.prefix,
                });
                continue;
            }
            let mut set = BTreeSet::new();
            for a in &self.adj[d] {
                if self.link_live(a.link) && g.dist[a.peer as usize] == du - 1 {
                    set.insert(Construct::session(DeviceId(d as u32), DeviceId(a.peer)));
                    set.extend(prov[a.peer as usize].iter().copied());
                }
            }
            prov[d] = set;
        }
        prov
    }

    /// The constructs contributing to one installed `(device, prefix)`
    /// key, given memoised group provenance. Replays `fold_key`'s winner
    /// determination: a valid static candidate always outranks BGP
    /// (admin distance 0/1 vs 20), so the winner's source is decidable
    /// without re-folding.
    fn key_provenance(
        &self,
        key: (u32, Prefix),
        memo: &mut BTreeMap<usize, Vec<BTreeSet<Construct>>>,
    ) -> BTreeSet<Construct> {
        let (device, prefix) = key;
        if let Some(sis) = self.static_keys.get(&key) {
            if sis.iter().any(|&si| self.static_applies(si)) {
                return BTreeSet::from([Construct::Static {
                    device: DeviceId(device),
                    prefix,
                }]);
            }
        }
        if let Some(&gi) = self.group_of.get(&prefix) {
            let prov = memo.entry(gi).or_insert_with(|| self.group_provenance(gi));
            return prov[device as usize].clone();
        }
        BTreeSet::new()
    }

    /// The constructs contributing to the FIB entry currently installed
    /// for `prefix` on `device`, or `None` if the engine manages no such
    /// entry. The attribution is derived on demand from the resident
    /// converged state, so it is always consistent with the last applied
    /// delta.
    ///
    /// # Examples
    ///
    /// ```
    /// use netmodel::provenance::Construct;
    /// use netmodel::rule::RouteClass;
    /// use netmodel::topology::{IfaceKind, Role, Topology};
    /// use routing::{Origination, RibBuilder, Scope};
    ///
    /// let mut topo = Topology::new();
    /// let tor = topo.add_device("tor", Role::Tor);
    /// let spine = topo.add_device("spine", Role::Spine);
    /// let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
    /// topo.add_link(tor, spine);
    /// let mut rb = RibBuilder::new(topo);
    /// let prefix = "10.0.1.0/24".parse().unwrap();
    /// rb.originate(Origination::new(
    ///     tor,
    ///     prefix,
    ///     RouteClass::HostSubnet,
    ///     Some(hosts),
    ///     Scope::All,
    /// ));
    /// let (engine, _net) = rb.into_engine().unwrap();
    ///
    /// // The spine's route crossed the tor–spine session and exists
    /// // because the tor originates the prefix.
    /// let via = engine.rule_provenance(spine, prefix).unwrap();
    /// assert!(via.contains(&Construct::session(tor, spine)));
    /// assert!(via.contains(&Construct::Origination { device: tor, prefix }));
    /// ```
    pub fn rule_provenance(&self, device: DeviceId, prefix: Prefix) -> Option<BTreeSet<Construct>> {
        let key = (device.0, prefix);
        if !self.installed.contains_key(&key) {
            return None;
        }
        let mut memo = BTreeMap::new();
        Some(self.key_provenance(key, &mut memo))
    }

    /// The full attribution database of the present converged state: the
    /// live construct universe (sessions over live links, originations
    /// and applicable statics of up devices) plus the contributing
    /// constructs of every installed FIB entry.
    ///
    /// The database is a pure function of the resident distance vectors,
    /// the configuration, and the failure state. Because incremental
    /// re-convergence keeps those bit-identical to a from-scratch rebuild
    /// of the degraded topology, the database an engine reports after any
    /// delta sequence equals the one [`RoutingEngine::full_rebuild`]'s
    /// description would produce — the differential scenario tests gate
    /// on exactly that.
    ///
    /// # Examples
    ///
    /// ```
    /// use netmodel::rule::RouteClass;
    /// use netmodel::topology::{IfaceKind, Role, Topology};
    /// use routing::{Origination, RibBuilder, Scope};
    ///
    /// let mut topo = Topology::new();
    /// let tor = topo.add_device("tor", Role::Tor);
    /// let spine = topo.add_device("spine", Role::Spine);
    /// let hosts = topo.add_iface(tor, "hosts", IfaceKind::Host);
    /// topo.add_link(tor, spine);
    /// let mut rb = RibBuilder::new(topo);
    /// rb.originate(Origination::new(
    ///     tor,
    ///     "10.0.1.0/24".parse().unwrap(),
    ///     RouteClass::HostSubnet,
    ///     Some(hosts),
    ///     Scope::All,
    /// ));
    /// let (engine, _net) = rb.into_engine().unwrap();
    ///
    /// let db = engine.config_db();
    /// // One session, one origination; both FIB entries attributed.
    /// assert_eq!(db.len(), 2);
    /// assert_eq!(db.map.len(), 2);
    /// ```
    pub fn config_db(&self) -> ConfigDb {
        let mut db = ConfigDb::default();
        for (l, link) in self.links.iter().enumerate() {
            if self.link_live(l) {
                db.constructs.insert(Construct::session(link.a, link.b));
            }
        }
        for o in &self.originations {
            if !self.device_down[o.device.0 as usize] {
                db.constructs.insert(Construct::Origination {
                    device: o.device,
                    prefix: o.prefix,
                });
            }
        }
        for (si, s) in self.statics.iter().enumerate() {
            if self.static_applies(si) {
                db.constructs.insert(Construct::Static {
                    device: s.device,
                    prefix: s.prefix,
                });
            }
        }
        let mut memo = BTreeMap::new();
        for &key in self.installed.keys() {
            let set = self.key_provenance(key, &mut memo);
            db.map.insert((DeviceId(key.0), key.1), set);
        }
        db
    }
}
