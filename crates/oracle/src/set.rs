//! Packet sets by explicit enumeration: the oracle's answer to `netbdd`.
//!
//! A [`PacketSet`] is literally the set of concrete packets it contains.
//! Every Boolean-algebra and quantification operation the BDD engine
//! implements symbolically is mirrored here by visiting packets one at a
//! time, so each mirror is a direct transcription of the operation's
//! definition.

use std::collections::HashSet;

use crate::space::{ToyPacket, ToySpace};

/// A set of toy packets, stored extensionally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PacketSet {
    packets: HashSet<ToyPacket>,
}

impl PacketSet {
    /// The empty set.
    pub fn empty() -> PacketSet {
        PacketSet {
            packets: HashSet::new(),
        }
    }

    /// The full space: every packet.
    pub fn full(space: &ToySpace) -> PacketSet {
        PacketSet {
            packets: space.packets().collect(),
        }
    }

    /// The set of packets satisfying `pred`.
    pub fn from_pred(space: &ToySpace, mut pred: impl FnMut(ToyPacket) -> bool) -> PacketSet {
        PacketSet {
            packets: space.packets().filter(|&p| pred(p)).collect(),
        }
    }

    /// The set `{p : bit var of p == value}`.
    pub fn literal(space: &ToySpace, var: u32, value: bool) -> PacketSet {
        PacketSet::from_pred(space, |p| space.bit(p, var) == value)
    }

    /// The set holding exactly `packets`.
    pub fn from_packets(packets: impl IntoIterator<Item = ToyPacket>) -> PacketSet {
        PacketSet {
            packets: packets.into_iter().collect(),
        }
    }

    /// Add one packet.
    pub fn insert(&mut self, p: ToyPacket) {
        self.packets.insert(p);
    }

    /// Membership test.
    pub fn contains(&self, p: ToyPacket) -> bool {
        self.packets.contains(&p)
    }

    /// Number of packets in the set.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the set holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterate over the packets, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = ToyPacket> + '_ {
        self.packets.iter().copied()
    }

    /// Set intersection (the oracle's `Bdd::and`).
    pub fn and(&self, other: &PacketSet) -> PacketSet {
        PacketSet {
            packets: self.packets.intersection(&other.packets).copied().collect(),
        }
    }

    /// Set union (the oracle's `Bdd::or`).
    pub fn or(&self, other: &PacketSet) -> PacketSet {
        PacketSet {
            packets: self.packets.union(&other.packets).copied().collect(),
        }
    }

    /// Set difference (the oracle's `Bdd::diff`).
    pub fn diff(&self, other: &PacketSet) -> PacketSet {
        PacketSet {
            packets: self.packets.difference(&other.packets).copied().collect(),
        }
    }

    /// Symmetric difference (the oracle's `Bdd::xor`).
    pub fn xor(&self, other: &PacketSet) -> PacketSet {
        PacketSet {
            packets: self
                .packets
                .symmetric_difference(&other.packets)
                .copied()
                .collect(),
        }
    }

    /// Complement relative to the full toy space.
    pub fn not(&self, space: &ToySpace) -> PacketSet {
        PacketSet::from_pred(space, |p| !self.contains(p))
    }

    /// Restrict: packets whose variant with bit `var` forced to `value`
    /// is in the set. This is the enumeration reading of the BDD cofactor
    /// `f[var := value]` — the result no longer depends on `var`.
    pub fn restrict(&self, space: &ToySpace, var: u32, value: bool) -> PacketSet {
        PacketSet::from_pred(space, |p| self.contains(space.with_bit(p, var, value)))
    }

    /// Existential quantification: `∃var. f = f[var:=0] ∨ f[var:=1]`.
    pub fn exists(&self, space: &ToySpace, var: u32) -> PacketSet {
        self.restrict(space, var, false)
            .or(&self.restrict(space, var, true))
    }

    /// Universal quantification: `∀var. f = f[var:=0] ∧ f[var:=1]`.
    pub fn forall(&self, space: &ToySpace, var: u32) -> PacketSet {
        self.restrict(space, var, false)
            .and(&self.restrict(space, var, true))
    }

    /// Fraction of the space the set occupies.
    pub fn probability(&self, space: &ToySpace) -> f64 {
        self.len() as f64 / space.size() as f64
    }

    /// Number of satisfying assignments — for a set over `total_bits`
    /// variables this is simply its cardinality.
    pub fn sat_count(&self) -> u128 {
        self.len() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra_on_literals() {
        let s = ToySpace::default();
        let a = PacketSet::literal(&s, 0, true);
        let b = PacketSet::literal(&s, 1, true);
        assert_eq!(a.len() as u32, s.size() / 2);
        assert_eq!(a.and(&b).len() as u32, s.size() / 4);
        assert_eq!(a.or(&b).len() as u32, 3 * s.size() / 4);
        assert_eq!(a.xor(&b).len() as u32, s.size() / 2);
        assert_eq!(a.diff(&b).len() as u32, s.size() / 4);
        assert_eq!(a.not(&s).len() as u32, s.size() / 2);
        assert!(a.and(&a.not(&s)).is_empty());
    }

    #[test]
    fn quantifiers_on_a_conjunction() {
        let s = ToySpace::default();
        // f = bit0 ∧ bit1
        let f = PacketSet::literal(&s, 0, true).and(&PacketSet::literal(&s, 1, true));
        // ∃bit0. f = bit1; ∀bit0. f = ∅
        assert_eq!(f.exists(&s, 0), PacketSet::literal(&s, 1, true));
        assert!(f.forall(&s, 0).is_empty());
        // restrict to bit0=1 leaves bit1; to bit0=0 leaves nothing.
        assert_eq!(f.restrict(&s, 0, true), PacketSet::literal(&s, 1, true));
        assert!(f.restrict(&s, 0, false).is_empty());
    }

    #[test]
    fn restricted_set_is_independent_of_var() {
        let s = ToySpace::default();
        let f = PacketSet::from_pred(&s, |p| s.dst(p) % 3 == 0 && s.bit(p, 5));
        let r = f.restrict(&s, 5, true);
        for p in r.iter() {
            assert!(r.contains(s.with_bit(p, 5, false)));
            assert!(r.contains(s.with_bit(p, 5, true)));
        }
    }

    #[test]
    fn probability_and_sat_count_agree() {
        let s = ToySpace::default();
        let f = PacketSet::from_pred(&s, |p| s.proto(p) == 1);
        assert_eq!(f.probability(&s), 0.25);
        assert_eq!(f.sat_count(), (s.size() / 4) as u128);
    }
}
