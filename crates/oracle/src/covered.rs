//! Covered sets by enumeration: the oracle's answer to Algorithm 1
//! (`yardstick::CoveredSets`).
//!
//! A [`ToyTrace`] records marked packets per `(device, ingress)` location
//! and inspected rules, exactly like `CoverageTrace`. The covered set of a
//! rule is then computed straight from the algorithm's definition: the
//! full match set for inspected rules, otherwise the tested packets at the
//! device intersected with the match set. Toy rules carry no ingress
//! constraint, so only the device-level branch of the algorithm applies;
//! iface-tagged marks still matter because incoming-interface coverage
//! consumes them.

use std::collections::HashSet;

use crate::forward::ToyNet;
use crate::set::PacketSet;
use crate::space::ToySpace;
use crate::table::TableOracle;

/// The toy mirror of `CoverageTrace`: located packet marks plus inspected
/// rules, identified as `(device, rule index)` pairs.
#[derive(Clone, Debug, Default)]
pub struct ToyTrace {
    marks: Vec<(usize, Option<u32>, PacketSet)>,
    rules: HashSet<(usize, usize)>,
}

impl ToyTrace {
    /// An empty trace.
    pub fn new() -> ToyTrace {
        ToyTrace::default()
    }

    /// Record marked packets at a device, optionally tagged with the
    /// ingress interface they arrived on (global toy iface index).
    pub fn add_packets(&mut self, device: usize, iface: Option<u32>, packets: PacketSet) {
        if !packets.is_empty() {
            self.marks.push((device, iface, packets));
        }
    }

    /// Record an inspected rule.
    pub fn add_rule(&mut self, device: usize, index: usize) {
        self.rules.insert((device, index));
    }

    /// Whether a rule was recorded as inspected.
    pub fn contains_rule(&self, device: usize, index: usize) -> bool {
        self.rules.contains(&(device, index))
    }

    /// All packets marked anywhere at `device`, regardless of ingress.
    pub fn at_device(&self, device: usize) -> PacketSet {
        let mut acc = PacketSet::empty();
        for (d, _, set) in &self.marks {
            if *d == device {
                acc = acc.or(set);
            }
        }
        acc
    }

    /// Packets marked at `device` tagged with exactly `iface`
    /// (device-level marks with unknown ingress are *not* included).
    pub fn at_device_iface(&self, device: usize, iface: u32) -> PacketSet {
        let mut acc = PacketSet::empty();
        for (d, i, set) in &self.marks {
            if *d == device && *i == Some(iface) {
                acc = acc.or(set);
            }
        }
        acc
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty() && self.rules.is_empty()
    }
}

/// Disjoint match sets for every device of a toy network.
pub fn net_match_sets(space: &ToySpace, net: &mut ToyNet) -> Vec<TableOracle> {
    (0..net.device_count())
        .map(|d| TableOracle::compute(space, net.table_mut(d)))
        .collect()
}

/// The covered sets `T[r]` of every rule, by direct transcription of
/// Algorithm 1.
#[derive(Clone, Debug)]
pub struct CoveredOracle {
    covered: Vec<Vec<PacketSet>>,
}

impl CoveredOracle {
    /// Evaluate Algorithm 1 over every rule of every device.
    pub fn compute(
        _space: &ToySpace,
        match_sets: &[TableOracle],
        trace: &ToyTrace,
    ) -> CoveredOracle {
        let mut covered = Vec::with_capacity(match_sets.len());
        for (device, ms) in match_sets.iter().enumerate() {
            let at_device = trace.at_device(device);
            let dev = (0..ms.len())
                .map(|i| {
                    if trace.contains_rule(device, i) {
                        ms.get(i).clone()
                    } else {
                        at_device.and(ms.get(i))
                    }
                })
                .collect();
            covered.push(dev);
        }
        CoveredOracle { covered }
    }

    /// The covered set `T[r]` of rule `index` on `device`.
    pub fn get(&self, device: usize, index: usize) -> &PacketSet {
        &self.covered[device][index]
    }

    /// Whether `T[r]` is non-empty.
    pub fn is_exercised(&self, device: usize, index: usize) -> bool {
        !self.get(device, index).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::ToyIfaceKind;
    use crate::table::{ToyPrefix, ToyRule};

    /// One device: /4 to hosts, default up a dangling link.
    fn one_device() -> (ToySpace, ToyNet) {
        let s = ToySpace::default();
        let mut net = ToyNet::new();
        let d = net.add_device();
        let h = net.add_iface(d, ToyIfaceKind::Host);
        let up = net.add_iface(d, ToyIfaceKind::External);
        net.add_rule(d, ToyRule::forward(ToyPrefix::new(0b1010, 4), vec![h]));
        net.add_rule(d, ToyRule::forward(ToyPrefix::new(0, 0), vec![up]));
        net.finalize();
        (s, net)
    }

    #[test]
    fn empty_trace_covers_nothing() {
        let (s, mut net) = one_device();
        let ms = net_match_sets(&s, &mut net);
        let cov = CoveredOracle::compute(&s, &ms, &ToyTrace::new());
        assert!(!cov.is_exercised(0, 0));
        assert!(!cov.is_exercised(0, 1));
    }

    #[test]
    fn inspected_rule_is_fully_covered() {
        let (s, mut net) = one_device();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        trace.add_rule(0, 1);
        let cov = CoveredOracle::compute(&s, &ms, &trace);
        assert_eq!(cov.get(0, 1), ms[0].get(1));
        assert!(!cov.is_exercised(0, 0));
    }

    #[test]
    fn marked_packets_split_across_rules() {
        let (s, mut net) = one_device();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        // Mark the /3 containing the /4: covers all of the specific rule
        // and the other half of the /3 under the default.
        let p3 = PacketSet::from_pred(&s, |p| s.dst(p) >> 5 == 0b101);
        trace.add_packets(0, None, p3.clone());
        let cov = CoveredOracle::compute(&s, &ms, &trace);
        assert_eq!(cov.get(0, 0), ms[0].get(0));
        assert_eq!(cov.get(0, 1), &p3.diff(ms[0].get(0)));
        // Covered sets never exceed match sets.
        assert!(cov.get(0, 1).diff(ms[0].get(1)).is_empty());
    }

    #[test]
    fn iface_tagged_marks_count_at_device_level() {
        let (s, mut net) = one_device();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        let full = PacketSet::full(&s);
        trace.add_packets(0, Some(0), full.clone());
        let cov = CoveredOracle::compute(&s, &ms, &trace);
        // at_device aggregates ingress refinements, so both rules cover.
        assert_eq!(cov.get(0, 0), ms[0].get(0));
        assert_eq!(cov.get(0, 1), ms[0].get(1));
        // The exact-iface slice only sees the tagged marks.
        assert_eq!(trace.at_device_iface(0, 0), full);
        assert!(trace.at_device_iface(0, 1).is_empty());
    }

    #[test]
    fn compositionality_symbolic_equals_union_of_concrete() {
        let (s, mut net) = one_device();
        let ms = net_match_sets(&s, &mut net);
        // Marking a 4-destination block at once vs. one dst at a time.
        let block = PacketSet::from_pred(&s, |p| s.dst(p) >> 2 == 0b101000);
        let mut sym = ToyTrace::new();
        sym.add_packets(0, None, block.clone());
        let mut conc = ToyTrace::new();
        for dst in 0b10100000..0b10100100u32 {
            conc.add_packets(0, None, PacketSet::from_pred(&s, |p| s.dst(p) == dst));
        }
        let a = CoveredOracle::compute(&s, &ms, &sym);
        let b = CoveredOracle::compute(&s, &ms, &conc);
        for i in 0..2 {
            assert_eq!(a.get(0, i), b.get(0, i));
        }
    }
}
