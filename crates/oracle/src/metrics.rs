//! Coverage metrics by counting: the oracle's answer to
//! `yardstick::Analyzer`.
//!
//! Where the analyzer divides BDD probabilities, the oracle divides packet
//! counts — over the toy space the two are the same number, because every
//! probability is `|set| / 2^bits`. The aggregators are re-implemented
//! rather than imported so the oracle shares no code with the
//! implementation it judges.

use crate::covered::{CoveredOracle, ToyTrace};
use crate::forward::{ToyIfaceKind, ToyNet};
use crate::space::ToySpace;
use crate::table::TableOracle;

/// Mirror of `yardstick::Aggregator` (Equation 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToyAggregator {
    /// Unweighted mean of component coverages.
    Mean,
    /// Weight-proportional mean.
    Weighted,
    /// Fraction of components with non-zero coverage.
    Fractional,
}

impl ToyAggregator {
    /// Fold `(coverage, weight)` pairs; `None` on an empty collection.
    pub fn fold(self, items: &[(f64, f64)]) -> Option<f64> {
        if items.is_empty() {
            return None;
        }
        Some(match self {
            ToyAggregator::Mean => items.iter().map(|&(c, _)| c).sum::<f64>() / items.len() as f64,
            ToyAggregator::Weighted => {
                let total: f64 = items.iter().map(|&(_, w)| w).sum();
                if total == 0.0 {
                    0.0
                } else {
                    items.iter().map(|&(c, w)| c * w).sum::<f64>() / total
                }
            }
            ToyAggregator::Fractional => {
                items.iter().filter(|&&(c, _)| c > 0.0).count() as f64 / items.len() as f64
            }
        })
    }
}

/// Count-based coverage metrics over a toy network, trace, and the
/// covered sets derived from them.
pub struct MetricsOracle<'a> {
    net: &'a ToyNet,
    ms: &'a [TableOracle],
    trace: &'a ToyTrace,
    covered: CoveredOracle,
}

impl<'a> MetricsOracle<'a> {
    /// Derive covered sets from the trace and wrap everything up.
    pub fn new(
        space: &ToySpace,
        net: &'a ToyNet,
        ms: &'a [TableOracle],
        trace: &'a ToyTrace,
    ) -> MetricsOracle<'a> {
        let covered = CoveredOracle::compute(space, ms, trace);
        MetricsOracle {
            net,
            ms,
            trace,
            covered,
        }
    }

    /// The covered sets computed at construction.
    pub fn covered_sets(&self) -> &CoveredOracle {
        &self.covered
    }

    /// Rule coverage `|T[r]| / |M[r]|`; `None` for shadowed rules.
    pub fn rule_coverage(&self, device: usize, index: usize) -> Option<f64> {
        let m = self.ms[device].get(index);
        if m.is_empty() {
            return None;
        }
        Some(self.covered.get(device, index).len() as f64 / m.len() as f64)
    }

    /// Device coverage `|∪T| / |∪M|`; `None` for rule-less devices.
    pub fn device_coverage(&self, device: usize) -> Option<f64> {
        let total = self.ms[device].device_total();
        if total.is_empty() {
            return None;
        }
        let mut covered = crate::set::PacketSet::empty();
        for i in 0..self.ms[device].len() {
            covered = covered.or(self.covered.get(device, i));
        }
        Some(covered.len() as f64 / total.len() as f64)
    }

    /// Rules (as `(device, index)`) whose action forwards out `iface`.
    fn rules_out_iface(&self, iface: u32) -> Vec<(usize, usize)> {
        let device = self.net.iface(iface).device;
        self.net
            .table(device)
            .rules_unchecked()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.action.out_ifaces().contains(&iface))
            .map(|(i, _)| (device, i))
            .collect()
    }

    /// Outgoing interface coverage: `Σ|T| / Σ|M|` over the rules that
    /// forward out `iface`; `None` when no rule can use it.
    pub fn out_iface_coverage(&self, iface: u32) -> Option<f64> {
        let mut m_total = 0usize;
        let mut t_total = 0usize;
        for (d, i) in self.rules_out_iface(iface) {
            m_total += self.ms[d].get(i).len();
            t_total += self.covered.get(d, i).len();
        }
        if m_total == 0 {
            return None;
        }
        Some(t_total as f64 / m_total as f64)
    }

    /// Incoming interface coverage: over the device's rules, the fraction
    /// of match-set space covered by packets recorded *on that interface*
    /// (inspected rules count as fully covered).
    pub fn in_iface_coverage(&self, iface: u32) -> Option<f64> {
        let device = self.net.iface(iface).device;
        let arrived = self.trace.at_device_iface(device, iface);
        let mut m_total = 0usize;
        let mut t_total = 0usize;
        for i in 0..self.ms[device].len() {
            let m = self.ms[device].get(i);
            if m.is_empty() {
                continue;
            }
            m_total += m.len();
            if self.trace.contains_rule(device, i) {
                t_total += m.len();
            } else {
                t_total += arrived.and(m).len();
            }
        }
        if m_total == 0 {
            return None;
        }
        Some(t_total as f64 / m_total as f64)
    }

    /// Aggregate rule coverage over rules passing `filter`; shadowed
    /// rules are excluded.
    pub fn aggregate_rules(
        &self,
        agg: ToyAggregator,
        filter: impl Fn(usize, usize) -> bool,
    ) -> Option<f64> {
        let mut items = Vec::new();
        for (d, ms) in self.ms.iter().enumerate() {
            for i in 0..ms.len() {
                if !filter(d, i) {
                    continue;
                }
                if let Some(c) = self.rule_coverage(d, i) {
                    let w = ms.get(i).len() as f64;
                    items.push((c, w));
                }
            }
        }
        agg.fold(&items)
    }

    /// Aggregate device coverage over devices passing `filter`.
    pub fn aggregate_devices(
        &self,
        agg: ToyAggregator,
        filter: impl Fn(usize) -> bool,
    ) -> Option<f64> {
        let mut items = Vec::new();
        for d in 0..self.ms.len() {
            if !filter(d) {
                continue;
            }
            if let Some(c) = self.device_coverage(d) {
                let w = self.ms[d].device_total().len() as f64;
                items.push((c, w));
            }
        }
        agg.fold(&items)
    }

    /// Aggregate outgoing-interface coverage. Loopbacks are excluded;
    /// interfaces no rule forwards out of count as 0.
    pub fn aggregate_out_ifaces(
        &self,
        agg: ToyAggregator,
        filter: impl Fn(u32) -> bool,
    ) -> Option<f64> {
        let mut items = Vec::new();
        for iface in 0..self.net.iface_count() as u32 {
            if self.net.iface(iface).kind == ToyIfaceKind::Loopback || !filter(iface) {
                continue;
            }
            let c = self.out_iface_coverage(iface).unwrap_or(0.0);
            let w: usize = self
                .rules_out_iface(iface)
                .into_iter()
                .map(|(d, i)| self.ms[d].get(i).len())
                .sum();
            items.push((c, w as f64));
        }
        agg.fold(&items)
    }

    /// Aggregate incoming-interface coverage. Loopbacks are excluded;
    /// interfaces with no reachable rules are vacuous and skipped.
    pub fn aggregate_in_ifaces(
        &self,
        agg: ToyAggregator,
        filter: impl Fn(u32) -> bool,
    ) -> Option<f64> {
        let mut items = Vec::new();
        for iface in 0..self.net.iface_count() as u32 {
            if self.net.iface(iface).kind == ToyIfaceKind::Loopback || !filter(iface) {
                continue;
            }
            if let Some(c) = self.in_iface_coverage(iface) {
                let device = self.net.iface(iface).device;
                let w = self.ms[device].device_total().len() as f64;
                items.push((c, w));
            }
        }
        agg.fold(&items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covered::net_match_sets;
    use crate::set::PacketSet;
    use crate::table::{ToyPrefix, ToyRule};

    /// tor(/4 → hosts, default → spine) — spine(/4 → back down).
    fn build() -> (ToySpace, ToyNet, u32, u32) {
        let s = ToySpace::default();
        let mut net = ToyNet::new();
        let tor = net.add_device();
        let spine = net.add_device();
        let h = net.add_iface(tor, ToyIfaceKind::Host);
        let (ts, st) = net.add_link(tor, spine);
        net.add_rule(tor, ToyRule::forward(ToyPrefix::new(0b1010, 4), vec![h]));
        net.add_rule(tor, ToyRule::forward(ToyPrefix::new(0, 0), vec![ts]));
        net.add_rule(spine, ToyRule::forward(ToyPrefix::new(0b1010, 4), vec![st]));
        net.finalize();
        (s, net, ts, st)
    }

    #[test]
    fn empty_trace_means_zero_everywhere() {
        let (s, mut net, _, _) = build();
        let ms = net_match_sets(&s, &mut net);
        let trace = ToyTrace::new();
        let m = MetricsOracle::new(&s, &net, &ms, &trace);
        assert_eq!(m.device_coverage(0), Some(0.0));
        assert_eq!(
            m.aggregate_rules(ToyAggregator::Fractional, |_, _| true),
            Some(0.0)
        );
    }

    #[test]
    fn marking_everything_gives_full_coverage() {
        let (s, mut net, _, _) = build();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        trace.add_packets(0, None, PacketSet::full(&s));
        trace.add_packets(1, None, PacketSet::full(&s));
        let m = MetricsOracle::new(&s, &net, &ms, &trace);
        for agg in [
            ToyAggregator::Mean,
            ToyAggregator::Weighted,
            ToyAggregator::Fractional,
        ] {
            assert_eq!(m.aggregate_rules(agg, |_, _| true), Some(1.0));
            assert_eq!(m.aggregate_devices(agg, |_| true), Some(1.0));
        }
    }

    #[test]
    fn partial_marks_give_exact_ratios() {
        let (s, mut net, _, _) = build();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        // Half of the tor /4 (a /5-equivalent block).
        let half = PacketSet::from_pred(&s, |p| s.dst(p) >> 3 == 0b10100);
        trace.add_packets(0, None, half);
        let m = MetricsOracle::new(&s, &net, &ms, &trace);
        assert_eq!(m.rule_coverage(0, 0), Some(0.5));
        assert_eq!(m.rule_coverage(0, 1), Some(0.0));
        // Device: covered 2^9 packets of 2^14.
        assert_eq!(
            m.device_coverage(0),
            Some((1 << 9) as f64 / s.size() as f64)
        );
        assert_eq!(m.rule_coverage(1, 0), Some(0.0));
    }

    #[test]
    fn out_iface_coverage_follows_its_rules() {
        let (s, mut net, ts, st) = build();
        let ms = net_match_sets(&s, &mut net);
        let mut trace = ToyTrace::new();
        trace.add_rule(0, 1); // inspect tor's default (out the uplink)
        let m = MetricsOracle::new(&s, &net, &ms, &trace);
        assert_eq!(m.out_iface_coverage(ts), Some(1.0));
        assert_eq!(m.out_iface_coverage(st), Some(0.0));
        // Host iface: its /4 rule untested.
        assert_eq!(m.out_iface_coverage(0), Some(0.0));
    }

    #[test]
    fn in_iface_coverage_needs_ingress_marks() {
        let (s, mut net, _, st) = build();
        let ms = net_match_sets(&s, &mut net);
        // Device-level marks at spine leave its ingress at zero.
        let mut t1 = ToyTrace::new();
        t1.add_packets(1, None, PacketSet::full(&s));
        let m1 = MetricsOracle::new(&s, &net, &ms, &t1);
        assert_eq!(m1.in_iface_coverage(st), Some(0.0));
        // Ingress-tagged marks cover it fully.
        let mut t2 = ToyTrace::new();
        t2.add_packets(1, Some(st), PacketSet::full(&s));
        let m2 = MetricsOracle::new(&s, &net, &ms, &t2);
        assert_eq!(m2.in_iface_coverage(st), Some(1.0));
    }

    #[test]
    fn aggregators_fold_as_documented() {
        let items = vec![(1.0, 1.0), (0.0, 3.0)];
        assert_eq!(ToyAggregator::Mean.fold(&items), Some(0.5));
        assert_eq!(ToyAggregator::Weighted.fold(&items), Some(0.25));
        assert_eq!(ToyAggregator::Fractional.fold(&items), Some(0.5));
        assert_eq!(ToyAggregator::Mean.fold(&[]), None);
    }
}
