//! Rule tables by winner scan: the oracle's answer to `netmodel`'s
//! LPM ordering and disjoint match-set computation.
//!
//! The symbolic side turns an ordered table into residual match sets with
//! BDD subtraction (`raw − matched-so-far`). Here we instead ask, for every
//! packet individually, "which rule is the first to match you?" — the two
//! must pick the same rule for every packet, and the induced partition must
//! equal the symbolic match sets.

use crate::set::PacketSet;
use crate::space::{ToyPacket, ToySpace};

/// A prefix over the toy destination (or source) field: the top `len` bits
/// are fixed to `bits`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ToyPrefix {
    /// The fixed high-order bits, right-aligned (`bits < 2^len`).
    pub bits: u32,
    /// Number of fixed bits, `0..=field_width`.
    pub len: u32,
}

impl ToyPrefix {
    /// A prefix fixing the top `len` bits to `bits`.
    pub fn new(bits: u32, len: u32) -> ToyPrefix {
        debug_assert!(len == 0 || bits < (1 << len));
        ToyPrefix { bits, len }
    }

    /// Whether a field value of width `field_bits` falls inside the prefix.
    pub fn contains(&self, value: u32, field_bits: u32) -> bool {
        debug_assert!(self.len <= field_bits);
        if self.len == 0 {
            return true;
        }
        value >> (field_bits - self.len) == self.bits
    }
}

/// What a toy rule does. Interface numbers are local to the device; the
/// embedding layer maps them onto real `IfaceId`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToyAction {
    /// Forward out these device-local interfaces (ECMP when several).
    Forward(Vec<u32>),
    /// Null-route the packet.
    Drop,
}

impl ToyAction {
    /// True for [`ToyAction::Drop`].
    pub fn is_drop(&self) -> bool {
        matches!(self, ToyAction::Drop)
    }

    /// The output interfaces (empty for drops).
    pub fn out_ifaces(&self) -> &[u32] {
        match self {
            ToyAction::Forward(out) => out,
            ToyAction::Drop => &[],
        }
    }
}

/// One toy match-action rule: optional dst prefix (the LPM key), optional
/// src prefix, optional exact protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToyRule {
    /// Destination-prefix constraint (the LPM key), if any.
    pub dst: Option<ToyPrefix>,
    /// Source-prefix constraint, if any.
    pub src: Option<ToyPrefix>,
    /// Exact-protocol constraint, if any.
    pub proto: Option<u32>,
    /// What the rule does on a match.
    pub action: ToyAction,
}

impl ToyRule {
    /// A destination-prefix forwarding rule — the common FIB case.
    pub fn forward(dst: ToyPrefix, out: Vec<u32>) -> ToyRule {
        ToyRule {
            dst: Some(dst),
            src: None,
            proto: None,
            action: ToyAction::Forward(out),
        }
    }

    /// A destination-prefix null route.
    pub fn null_route(dst: ToyPrefix) -> ToyRule {
        ToyRule {
            dst: Some(dst),
            src: None,
            proto: None,
            action: ToyAction::Drop,
        }
    }

    /// Whether the rule's raw match contains `p`.
    pub fn matches(&self, space: &ToySpace, p: ToyPacket) -> bool {
        if let Some(d) = &self.dst {
            if !d.contains(space.dst(p), space.dst_bits) {
                return false;
            }
        }
        if let Some(s) = &self.src {
            if !s.contains(space.src(p), space.src_bits) {
                return false;
            }
        }
        if let Some(proto) = self.proto {
            if space.proto(p) != proto {
                return false;
            }
        }
        true
    }

    /// The raw (pre-shadowing) match set.
    pub fn raw_match(&self, space: &ToySpace) -> PacketSet {
        PacketSet::from_pred(space, |p| self.matches(space, p))
    }
}

/// Ordering discipline, mirroring `netmodel::TableMode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToyTableMode {
    /// Stable sort by descending dst-prefix length; `None` sorts like /0.
    Lpm,
    /// First inserted wins.
    Priority,
}

/// An ordered toy rule table.
#[derive(Clone, Debug)]
pub struct ToyTable {
    /// How the table orders its rules into first-match priority.
    pub mode: ToyTableMode,
    rules: Vec<ToyRule>,
    sorted: bool,
}

impl ToyTable {
    /// An empty table with the given ordering mode.
    pub fn new(mode: ToyTableMode) -> ToyTable {
        ToyTable {
            mode,
            rules: Vec::new(),
            sorted: true,
        }
    }

    /// Append a rule (re-finalize before querying).
    pub fn push(&mut self, rule: ToyRule) {
        self.rules.push(rule);
        self.sorted = false;
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Sort into first-match order, exactly like `Table::finalize`: LPM
    /// tables stably by descending dst length (ties keep insertion order).
    pub fn finalize(&mut self) {
        if !self.sorted {
            if self.mode == ToyTableMode::Lpm {
                self.rules
                    .sort_by_key(|r| std::cmp::Reverse(r.dst.map(|p| p.len).unwrap_or(0)));
            }
            self.sorted = true;
        }
    }

    /// Rules in first-match order.
    pub fn rules(&mut self) -> &[ToyRule] {
        self.finalize();
        &self.rules
    }

    /// Rules in first-match order, for tables already finalized.
    ///
    /// # Panics
    ///
    /// Panics if rules were pushed since the last [`ToyTable::finalize`].
    pub fn rules_unchecked(&self) -> &[ToyRule] {
        assert!(self.sorted, "table not finalized");
        &self.rules
    }

    /// Index of the first rule matching `p`, scanning in first-match order.
    ///
    /// # Panics
    ///
    /// Panics if the table has not been finalized.
    pub fn winner(&self, space: &ToySpace, p: ToyPacket) -> Option<usize> {
        assert!(self.sorted, "table not finalized");
        self.rules.iter().position(|r| r.matches(space, p))
    }
}

/// Disjoint match sets for one toy table — the mirror of
/// `netmodel::MatchSets` restricted to a single device.
#[derive(Clone, Debug)]
pub struct TableOracle {
    /// `effective[i]` = packets whose first match is rule `i`.
    effective: Vec<PacketSet>,
    /// Packets matched by any rule.
    total: PacketSet,
}

impl TableOracle {
    /// Partition the space by first-match winner.
    pub fn compute(space: &ToySpace, table: &mut ToyTable) -> TableOracle {
        table.finalize();
        let mut effective = vec![PacketSet::empty(); table.len()];
        let mut total = PacketSet::empty();
        for p in space.packets() {
            if let Some(i) = table.winner(space, p) {
                effective[i].insert(p);
                total.insert(p);
            }
        }
        TableOracle { effective, total }
    }

    /// The effective (residual) match set of rule `i`.
    pub fn get(&self, i: usize) -> &PacketSet {
        &self.effective[i]
    }

    /// Union of all effective match sets.
    pub fn device_total(&self) -> &PacketSet {
        &self.total
    }

    /// Whether rule `i` is fully shadowed by earlier rules.
    pub fn is_shadowed(&self, i: usize) -> bool {
        self.effective[i].is_empty()
    }

    /// Number of rules the partition covers.
    pub fn len(&self) -> usize {
        self.effective.len()
    }

    /// True when the table had no rules.
    pub fn is_empty(&self) -> bool {
        self.effective.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ToySpace {
        ToySpace::default()
    }

    #[test]
    fn lpm_orders_longest_first_and_default_wins_leftovers() {
        let s = space();
        let mut t = ToyTable::new(ToyTableMode::Lpm);
        t.push(ToyRule::forward(ToyPrefix::new(0, 0), vec![0])); // default
        t.push(ToyRule::forward(ToyPrefix::new(0b1010, 4), vec![1]));
        let oracle = TableOracle::compute(&s, &mut t);
        // After LPM sort the /4 is rule 0 and the default is rule 1.
        let p_specific = s.pack(0b1010_0000, 0, 0);
        let p_other = s.pack(0b0000_0001, 0, 0);
        assert_eq!(t.winner(&s, p_specific), Some(0));
        assert_eq!(t.winner(&s, p_other), Some(1));
        assert!(oracle.get(0).contains(p_specific));
        assert!(oracle.get(1).contains(p_other));
        assert!(!oracle.get(1).contains(p_specific));
        assert_eq!(oracle.device_total().len() as u32, s.size());
    }

    #[test]
    fn effective_sets_partition_the_total() {
        let s = space();
        let mut t = ToyTable::new(ToyTableMode::Lpm);
        t.push(ToyRule::forward(ToyPrefix::new(0b10, 2), vec![0]));
        t.push(ToyRule::forward(ToyPrefix::new(0b1011, 4), vec![1]));
        t.push(ToyRule::null_route(ToyPrefix::new(0b101, 3)));
        let oracle = TableOracle::compute(&s, &mut t);
        let mut union = PacketSet::empty();
        for i in 0..oracle.len() {
            for j in i + 1..oracle.len() {
                assert!(oracle.get(i).and(oracle.get(j)).is_empty());
            }
            union = union.or(oracle.get(i));
        }
        assert_eq!(&union, oracle.device_total());
    }

    #[test]
    fn duplicate_rule_is_shadowed() {
        let s = space();
        let mut t = ToyTable::new(ToyTableMode::Priority);
        t.push(ToyRule::forward(ToyPrefix::new(0b1, 1), vec![0]));
        t.push(ToyRule::forward(ToyPrefix::new(0b1, 1), vec![1]));
        let oracle = TableOracle::compute(&s, &mut t);
        assert!(!oracle.is_shadowed(0));
        assert!(oracle.is_shadowed(1));
    }

    #[test]
    fn priority_mode_respects_insertion_order() {
        let s = space();
        let mut t = ToyTable::new(ToyTableMode::Priority);
        t.push(ToyRule::null_route(ToyPrefix::new(0, 0)));
        t.push(ToyRule::forward(ToyPrefix::new(0b1111, 4), vec![0]));
        let oracle = TableOracle::compute(&s, &mut t);
        // The catch-all drop shadows the later specific completely.
        assert!(oracle.is_shadowed(1));
        assert_eq!(oracle.get(0).len() as u32, s.size());
    }

    #[test]
    fn proto_and_src_constraints_conjoin() {
        let s = space();
        let rule = ToyRule {
            dst: Some(ToyPrefix::new(0b1, 1)),
            src: Some(ToyPrefix::new(0b01, 2)),
            proto: Some(3),
            action: ToyAction::Drop,
        };
        let raw = rule.raw_match(&s);
        for p in raw.iter() {
            assert!(s.dst(p) >= 128);
            assert_eq!(s.src(p) >> 2, 0b01);
            assert_eq!(s.proto(p), 3);
        }
        assert_eq!(raw.len() as u32, s.size() / 2 / 4 / 4);
    }
}
