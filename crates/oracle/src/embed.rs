//! Embedding toy objects into the real header model, so the symbolic
//! engine and the oracle analyse *the same network*.
//!
//! The toy space maps onto a corner of the IPv4 plane:
//!
//! * toy dst `d` → `10.77.0.x` with `x = d << (8 - dst_bits)` — the toy
//!   dst field occupies the top `dst_bits` of the last octet, so a toy
//!   dst prefix of length `l` is exactly the real prefix `/24 + l`;
//! * toy src `s` → `192.168.0.x` the same way;
//! * toy proto `v` → IP protocol number `v` (exact match both sides);
//! * sport/dport are 0 and never matched on.
//!
//! Because every toy field lands on a *fixed-length* real prefix offset,
//! toy LPM order (by toy dst length) and real LPM order (by `24 + l`)
//! coincide, and both sorts are stable — rule `i` of a finalized toy
//! table is rule `i` of the finalized real table. [`embed_net`] relies on
//! this and therefore requires every rule to carry a dst prefix: a rule
//! with `dst: None` sorts as `/0` on both sides but would tie with a
//! zero-length `Some` prefix only in the toy order, silently desyncing
//! the indices.
//!
//! Probabilities do not transfer directly (the real model has 201 bits,
//! the toy one ~14), but *ratios* of dst-only sets do: every dst-only toy
//! set's real probability is `K · |toy set| / 2^total_bits` for one
//! network-wide constant `K`, so coverage ratios computed by the analyzer
//! equal the oracle's counting ratios exactly.

use netmodel::addr::Prefix;
use netmodel::header::{self, Packet};
use netmodel::rule::{Action, MatchFields, RouteClass, Rule};
use netmodel::topology::{IfaceKind, Role, Topology};
use netmodel::{IfaceId, Network};

use crate::forward::{ToyIfaceKind, ToyNet};
use crate::set::PacketSet;
use crate::space::{ToyPacket, ToySpace};
use crate::table::{ToyAction, ToyPrefix, ToyRule};

/// The /24 the toy destination field lives in.
pub const DST_BASE: u32 = 0x0A4D_0000; // 10.77.0.0
/// The /24 the toy source field lives in.
pub const SRC_BASE: u32 = 0xC0A8_0000; // 192.168.0.0

/// Real IPv4 destination address of a toy dst value.
pub fn embed_dst(space: &ToySpace, dst: u32) -> u32 {
    DST_BASE | (dst << (8 - space.dst_bits))
}

/// Real IPv4 source address of a toy src value.
pub fn embed_src(space: &ToySpace, src: u32) -> u32 {
    SRC_BASE | (src << (8 - space.src_bits))
}

/// The real packet a toy packet denotes.
pub fn embed_packet(space: &ToySpace, p: ToyPacket) -> Packet {
    Packet {
        src: embed_src(space, space.src(p)),
        proto: space.proto(p) as u8,
        ..Packet::v4_to(embed_dst(space, space.dst(p)))
    }
}

/// Real prefix of a toy dst prefix: `10.77.0.0/24` refined by `len` bits.
pub fn embed_dst_prefix(space: &ToySpace, p: ToyPrefix) -> Prefix {
    debug_assert!(p.len <= space.dst_bits);
    Prefix::v4(
        DST_BASE | (p.bits << (8 - p.len).min(8)),
        (24 + p.len) as u8,
    )
}

/// Real prefix of a toy src prefix: `192.168.0.0/24` refined by `len` bits.
pub fn embed_src_prefix(space: &ToySpace, p: ToyPrefix) -> Prefix {
    debug_assert!(p.len <= space.src_bits);
    Prefix::v4(
        SRC_BASE | (p.bits << (8 - p.len).min(8)),
        (24 + p.len) as u8,
    )
}

/// The real BDD variable carrying toy header bit `var`.
pub fn var_map(space: &ToySpace, var: u32) -> u32 {
    if var < space.dst_bits {
        header::DST_START + 24 + var
    } else if var < space.dst_bits + space.src_bits {
        header::SRC_START + 24 + (var - space.dst_bits)
    } else {
        let j = var - space.dst_bits - space.src_bits;
        header::PROTO_START + (8 - space.proto_bits) + j
    }
}

/// Real match fields of a toy rule.
pub fn embed_matches(space: &ToySpace, rule: &ToyRule) -> MatchFields {
    MatchFields {
        dst: rule.dst.map(|p| embed_dst_prefix(space, p)),
        src: rule.src.map(|p| embed_src_prefix(space, p)),
        proto: rule.proto.map(|v| v as u8),
        ..MatchFields::default()
    }
}

/// Real rule of a toy rule. Toy interface indices become `IfaceId`s
/// verbatim — [`embed_net`] preserves interface numbering.
pub fn embed_rule(space: &ToySpace, rule: &ToyRule) -> Rule {
    let action = match &rule.action {
        ToyAction::Drop => Action::Drop,
        ToyAction::Forward(outs) => Action::Forward(outs.iter().map(|&i| IfaceId(i)).collect()),
    };
    Rule {
        matches: embed_matches(space, rule),
        action,
        class: RouteClass::Other,
    }
}

/// The toy packet set a toy dst prefix denotes (the toy side of a
/// dst-only coverage mark).
pub fn dst_prefix_set(space: &ToySpace, p: ToyPrefix) -> PacketSet {
    PacketSet::from_pred(space, |pkt| p.contains(space.dst(pkt), space.dst_bits))
}

/// Build the real network a finalized toy network denotes.
///
/// Device `d` becomes `DeviceId(d)` and toy interface `i` becomes
/// `IfaceId(i)` — the construction replays the toy creation order, so all
/// indices transfer verbatim, and rule `i` of a device's finalized toy
/// table is rule `i` of the real table (see the module docs for why every
/// rule must carry a dst prefix).
///
/// # Panics
///
/// Panics if the toy network is not finalized or a rule has `dst: None`.
pub fn embed_net(space: &ToySpace, net: &ToyNet) -> Network {
    let mut topo = Topology::new();
    for d in 0..net.device_count() {
        topo.add_device(format!("d{d}"), Role::Other);
    }
    for i in 0..net.iface_count() as u32 {
        let ifc = net.iface(i);
        let dev = netmodel::topology::DeviceId(ifc.device as u32);
        match ifc.kind {
            ToyIfaceKind::P2p => match ifc.peer {
                Some(peer) if peer == i + 1 => {
                    let peer_dev = netmodel::topology::DeviceId(net.iface(peer).device as u32);
                    let (ai, bi) = topo.add_link(dev, peer_dev);
                    debug_assert_eq!((ai, bi), (IfaceId(i), IfaceId(peer)));
                }
                Some(peer) => debug_assert_eq!(peer + 1, i, "link pair out of order"),
                None => {
                    topo.add_iface(dev, format!("p2p{i}"), IfaceKind::P2p);
                }
            },
            kind => {
                let kind = match kind {
                    ToyIfaceKind::Host => IfaceKind::Host,
                    ToyIfaceKind::External => IfaceKind::External,
                    ToyIfaceKind::Loopback => IfaceKind::Loopback,
                    ToyIfaceKind::P2p => unreachable!(),
                };
                topo.add_iface(dev, format!("if{i}"), kind);
            }
        }
    }
    let mut real = Network::new(topo);
    for d in 0..net.device_count() {
        // Mirror the toy table's ordering mode: Priority-mode toy tables
        // (mutated snapshots, explicit ACL orderings) must keep their
        // first-match order verbatim, while Lpm-mode tables re-sort —
        // stably, over an already-sorted input, so the order is identical
        // either way.
        let toy_table = net.table(d);
        let mode = match toy_table.mode {
            crate::table::ToyTableMode::Lpm => netmodel::rule::TableMode::Lpm,
            crate::table::ToyTableMode::Priority => netmodel::rule::TableMode::Priority,
        };
        let mut table = netmodel::rule::Table::new(mode);
        for rule in toy_table.rules_unchecked() {
            assert!(
                rule.dst.is_some(),
                "embed_net requires dst prefixes on every rule"
            );
            table.push(embed_rule(space, rule));
        }
        table.finalize();
        real.set_table(netmodel::topology::DeviceId(d as u32), table);
    }
    real
}

/// Table ordering really is preserved: check that the finalized real
/// table orders rules identically to the finalized toy table.
pub fn assert_rule_order_preserved(space: &ToySpace, net: &ToyNet, real: &Network) {
    for d in 0..net.device_count() {
        let dev = netmodel::topology::DeviceId(d as u32);
        let toy_rules = net.table(d).rules_unchecked();
        let real_rules = real.device_rules(dev);
        assert_eq!(toy_rules.len(), real_rules.len());
        for (toy, real_rule) in toy_rules.iter().zip(real_rules) {
            assert_eq!(real_rule.matches, embed_matches(space, toy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ToyTableMode;
    use netbdd::Bdd;
    use netmodel::rule::Table;

    #[test]
    fn packet_bits_commute_with_the_embedding() {
        let s = ToySpace::default();
        for p in [0u32, 1, 0x2ABC, s.size() - 1, 0x1555] {
            let real = embed_packet(&s, p);
            for v in 0..s.total_bits() {
                assert_eq!(
                    s.bit(p, v),
                    real.bit(var_map(&s, v)),
                    "bit {v} of packet {p:#x} diverges"
                );
            }
        }
    }

    #[test]
    fn dst_prefix_membership_commutes() {
        let s = ToySpace::default();
        let mut bdd = Bdd::new();
        let tp = ToyPrefix::new(0b1011, 4);
        let real = header::dst_in(&mut bdd, &embed_dst_prefix(&s, tp));
        let toy = dst_prefix_set(&s, tp);
        for p in s.packets() {
            assert_eq!(toy.contains(p), embed_packet(&s, p).matches(&bdd, real));
        }
    }

    #[test]
    fn full_rule_membership_commutes() {
        let s = ToySpace::default();
        let mut bdd = Bdd::new();
        let rule = ToyRule {
            dst: Some(ToyPrefix::new(0b10, 2)),
            src: Some(ToyPrefix::new(0b1, 1)),
            proto: Some(2),
            action: ToyAction::Drop,
        };
        let real = embed_matches(&s, &rule).to_bdd(&mut bdd);
        for p in s.packets() {
            assert_eq!(
                rule.matches(&s, p),
                embed_packet(&s, p).matches(&bdd, real),
                "packet {p:#x}"
            );
        }
    }

    #[test]
    fn embedded_net_preserves_indices_and_order() {
        let s = ToySpace::default();
        let mut net = ToyNet::new();
        let a = net.add_device();
        let b = net.add_device();
        let h = net.add_iface(a, ToyIfaceKind::Host);
        let (ab, ba) = net.add_link(a, b);
        let w = net.add_iface(b, ToyIfaceKind::External);
        // Pushed shortest-first: LPM finalize must reorder both sides
        // identically.
        net.add_rule(a, ToyRule::forward(ToyPrefix::new(0, 0), vec![ab]));
        net.add_rule(a, ToyRule::forward(ToyPrefix::new(0b101, 3), vec![h]));
        net.add_rule(b, ToyRule::forward(ToyPrefix::new(0, 0), vec![w]));
        net.finalize();
        let real = embed_net(&s, &net);
        assert_eq!(real.topology().device_count(), 2);
        assert_eq!(real.topology().iface_count(), 4);
        assert_eq!(real.topology().iface(IfaceId(ab)).peer, Some(IfaceId(ba)));
        assert_eq!(real.topology().iface(IfaceId(h)).kind, IfaceKind::Host);
        assert_eq!(real.topology().iface(IfaceId(w)).kind, IfaceKind::External);
        assert_rule_order_preserved(&s, &net, &real);
    }

    #[test]
    fn lpm_tie_order_matches_for_equal_lengths() {
        let s = ToySpace::default();
        let mut toy = crate::table::ToyTable::new(ToyTableMode::Lpm);
        toy.push(ToyRule::forward(ToyPrefix::new(0b01, 2), vec![0]));
        toy.push(ToyRule::forward(ToyPrefix::new(0b10, 2), vec![1]));
        toy.push(ToyRule::forward(ToyPrefix::new(0b1, 1), vec![2]));
        toy.finalize();
        let mut real = Table::new(netmodel::rule::TableMode::Lpm);
        // Same insertion order as the toy table saw.
        for r in [
            ToyRule::forward(ToyPrefix::new(0b01, 2), vec![0]),
            ToyRule::forward(ToyPrefix::new(0b10, 2), vec![1]),
            ToyRule::forward(ToyPrefix::new(0b1, 1), vec![2]),
        ] {
            real.push(embed_rule(&s, &r));
        }
        for (toy_rule, real_rule) in toy.rules_unchecked().iter().zip(real.rules()) {
            assert_eq!(real_rule.matches, embed_matches(&s, toy_rule));
        }
    }
}
