//! The shrunken header space the oracle enumerates.
//!
//! A toy packet is a dense bit vector packed into a `u32`, laid out
//! MSB-of-field-first exactly like the real header model lays out BDD
//! variables: destination field first (variables `0..dst_bits`), then
//! source (`dst_bits..dst_bits+src_bits`), then protocol. The default
//! space — 8-bit dst, 4-bit src, 2-bit proto — has 2^14 = 16384 packets,
//! small enough that every operation can afford to visit all of them.

/// A concrete toy packet: `total_bits()` meaningful bits packed in a u32.
pub type ToyPacket = u32;

/// Dimensions of the toy header space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ToySpace {
    /// Width of the destination field (the LPM key), in bits.
    pub dst_bits: u32,
    /// Width of the source field, in bits.
    pub src_bits: u32,
    /// Width of the protocol field, in bits.
    pub proto_bits: u32,
}

impl Default for ToySpace {
    fn default() -> Self {
        ToySpace {
            dst_bits: 8,
            src_bits: 4,
            proto_bits: 2,
        }
    }
}

impl ToySpace {
    /// A space with the given field widths (≤ 24 bits total).
    pub fn new(dst_bits: u32, src_bits: u32, proto_bits: u32) -> ToySpace {
        let s = ToySpace {
            dst_bits,
            src_bits,
            proto_bits,
        };
        assert!(
            s.total_bits() <= 24,
            "toy space too wide to enumerate comfortably"
        );
        assert!(
            (1..=8).contains(&dst_bits),
            "dst field must fit in one v4 octet"
        );
        s
    }

    /// Total number of header bits (= BDD variables `0..total_bits`).
    pub fn total_bits(&self) -> u32 {
        self.dst_bits + self.src_bits + self.proto_bits
    }

    /// Number of packets in the space.
    pub fn size(&self) -> u32 {
        1u32 << self.total_bits()
    }

    /// Every packet in the space, ascending.
    pub fn packets(&self) -> impl Iterator<Item = ToyPacket> {
        0..self.size()
    }

    /// Bit `var` of packet `p`, where `var` indexes the packed layout
    /// MSB-first (var 0 is the most significant bit of the dst field).
    pub fn bit(&self, p: ToyPacket, var: u32) -> bool {
        debug_assert!(var < self.total_bits());
        (p >> (self.total_bits() - 1 - var)) & 1 == 1
    }

    /// The packet equal to `p` except bit `var` is forced to `value`.
    pub fn with_bit(&self, p: ToyPacket, var: u32, value: bool) -> ToyPacket {
        let mask = 1u32 << (self.total_bits() - 1 - var);
        if value {
            p | mask
        } else {
            p & !mask
        }
    }

    /// Destination field of `p`.
    pub fn dst(&self, p: ToyPacket) -> u32 {
        p >> (self.src_bits + self.proto_bits)
    }

    /// Source field of `p`.
    pub fn src(&self, p: ToyPacket) -> u32 {
        (p >> self.proto_bits) & ((1 << self.src_bits) - 1)
    }

    /// Protocol field of `p`.
    pub fn proto(&self, p: ToyPacket) -> u32 {
        p & ((1 << self.proto_bits) - 1)
    }

    /// Assemble a packet from field values.
    pub fn pack(&self, dst: u32, src: u32, proto: u32) -> ToyPacket {
        debug_assert!(dst < (1 << self.dst_bits));
        debug_assert!(src < (1 << self.src_bits));
        debug_assert!(proto < (1 << self.proto_bits));
        (dst << (self.src_bits + self.proto_bits)) | (src << self.proto_bits) | proto
    }

    /// Number of distinct destination values.
    pub fn dst_count(&self) -> u32 {
        1 << self.dst_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_14_bits() {
        let s = ToySpace::default();
        assert_eq!(s.total_bits(), 14);
        assert_eq!(s.size(), 16384);
        assert_eq!(s.packets().count(), 16384);
    }

    #[test]
    fn fields_roundtrip_through_pack() {
        let s = ToySpace::default();
        for dst in [0u32, 1, 200, 255] {
            for src in [0u32, 7, 15] {
                for proto in 0..4 {
                    let p = s.pack(dst, src, proto);
                    assert_eq!(s.dst(p), dst);
                    assert_eq!(s.src(p), src);
                    assert_eq!(s.proto(p), proto);
                }
            }
        }
    }

    #[test]
    fn bit_layout_is_msb_first_dst_then_src_then_proto() {
        let s = ToySpace::default();
        let p = s.pack(0b1000_0000, 0, 0);
        assert!(s.bit(p, 0));
        assert!(!s.bit(p, 1));
        let q = s.pack(0, 0b1000, 0);
        assert!(s.bit(q, 8));
        let r = s.pack(0, 0, 0b10);
        assert!(s.bit(r, 12));
    }

    #[test]
    fn with_bit_flips_one_position() {
        let s = ToySpace::default();
        for var in 0..s.total_bits() {
            let p = s.with_bit(0, var, true);
            assert!(s.bit(p, var));
            assert_eq!(s.with_bit(p, var, false), 0);
        }
    }
}
