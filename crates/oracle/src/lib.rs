//! # oracle — brute-force differential reference for the symbolic stack
//!
//! Every layer of this workspace manipulates packet sets *symbolically*
//! (hash-consed BDDs, residual match sets, fixpoint reachability). A bug in
//! any of those layers produces plausible-looking coverage numbers that are
//! silently wrong — the worst failure mode for a measurement system. The
//! follow-up work to the source paper (*Test Coverage for Network
//! Configurations*, NSDI '23) and P4Testgen both draw the same conclusion:
//! a symbolic engine is only trustworthy when an independent,
//! dumb-but-obviously-correct reference implementation checks it.
//!
//! This crate is that reference. It re-implements the contract of every
//! layer by **explicit enumeration** over a shrunken, configurable header
//! space ([`ToySpace`], default 8-bit dst + 4-bit src + 2-bit proto =
//! 16384 packets), where a packet set is literally a `HashSet<u32>`:
//!
//! | layer | symbolic implementation | oracle mirror |
//! |-------|-------------------------|---------------|
//! | set algebra | `netbdd::Bdd` ITE engine | [`PacketSet`] bit-by-bit ops |
//! | LPM + disjoint match sets | `netmodel::MatchSets` | [`table`] first-match winner scan |
//! | forwarding | `dataplane::forward`/`paths` | [`forward`] per-packet walks |
//! | Algorithm 1 covered sets | `yardstick::CoveredSets` | [`covered`] |
//! | coverage metrics | `yardstick::Analyzer` | [`metrics`] counting ratios |
//!
//! The differential proptest suites in `netbdd`, `netmodel`, `dataplane`,
//! and `core` generate random rule tables, traces, and expressions over the
//! toy space and assert `symbolic == oracle` for each contract; [`embed`]
//! maps toy objects onto the real 201-bit header model so both sides see
//! the same network.
//!
//! Nothing in this crate is clever on purpose. If a check disagrees, trust
//! the oracle.

#![deny(missing_docs)]

pub mod covered;
pub mod embed;
pub mod forward;
pub mod metrics;
pub mod set;
pub mod space;
pub mod table;

pub use covered::{net_match_sets, CoveredOracle, ToyTrace};
pub use forward::{ToyIface, ToyIfaceKind, ToyNet, Walk, WalkEnd};
pub use metrics::{MetricsOracle, ToyAggregator};
pub use set::PacketSet;
pub use space::{ToyPacket, ToySpace};
pub use table::{TableOracle, ToyAction, ToyPrefix, ToyRule, ToyTable, ToyTableMode};
