//! Per-packet forwarding walks: the oracle's answer to `dataplane`.
//!
//! The symbolic engine pushes whole packet *sets* through the network and
//! enumerates rule sequences; here a single concrete packet is walked hop
//! by hop, looking up its first-match rule at each device and following
//! the action. With ECMP the packet belongs to every leg's path, so
//! [`ToyNet::walks`] enumerates all branches depth-first; on ECMP-free
//! networks there is exactly one walk and it must agree with `traceroute`.
//!
//! Toy rules have no rewrites and no ingress constraints, so a walk is a
//! function of the packet and the start device alone.

use crate::set::PacketSet;
use crate::space::{ToyPacket, ToySpace};
use crate::table::{ToyAction, ToyRule, ToyTable, ToyTableMode};

/// What an interface attaches to, mirroring `netmodel::IfaceKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToyIfaceKind {
    /// Point-to-point fabric link.
    P2p,
    /// Host-facing port (delivery point).
    Host,
    /// External/WAN-facing port (exit point).
    External,
    /// Loopback (delivery point).
    Loopback,
}

/// One interface of a [`ToyNet`] device.
#[derive(Clone, Debug)]
pub struct ToyIface {
    /// The device the interface belongs to.
    pub device: usize,
    /// What the interface attaches to.
    pub kind: ToyIfaceKind,
    /// Peer interface (global index) for connected P2p links.
    pub peer: Option<u32>,
}

/// A toy network: one rule table per device plus globally indexed
/// interfaces, built with the same shape as `netmodel::Topology` +
/// `Network` so the embedding is a 1:1 index map.
#[derive(Clone, Debug, Default)]
pub struct ToyNet {
    tables: Vec<ToyTable>,
    ifaces: Vec<ToyIface>,
}

/// How a walk ended, mirroring `dataplane`'s `TraceOutcome`/`Terminal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkEnd {
    /// Delivered out a host or loopback interface.
    Delivered {
        /// Device the packet was delivered at.
        device: usize,
        /// The delivering interface.
        iface: u32,
    },
    /// Left the network out an external or dangling interface.
    Exited {
        /// Device the packet exited from.
        device: usize,
        /// The exit interface.
        iface: u32,
    },
    /// Dropped by a null-route rule.
    Dropped {
        /// Device that dropped the packet.
        device: usize,
        /// Index of the dropping rule in the device's table.
        rule: usize,
    },
    /// No rule matched at a device.
    Unmatched {
        /// The device with no matching rule.
        device: usize,
    },
    /// The walk exceeded its hop budget (a forwarding loop).
    HopLimit,
}

/// One complete walk: the `(device, rule index)` sequence exercised, and
/// how it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Walk {
    /// The `(device, rule index)` hops, in traversal order.
    pub hops: Vec<(usize, usize)>,
    /// How the walk ended.
    pub end: WalkEnd,
}

impl Walk {
    /// True when the walk ended in a delivery.
    pub fn delivered(&self) -> bool {
        matches!(self.end, WalkEnd::Delivered { .. })
    }

    /// Devices traversed, in order.
    pub fn devices(&self) -> Vec<usize> {
        self.hops.iter().map(|&(d, _)| d).collect()
    }
}

impl ToyNet {
    /// An empty network.
    pub fn new() -> ToyNet {
        ToyNet::default()
    }

    /// Add a device with an empty LPM table.
    pub fn add_device(&mut self) -> usize {
        self.tables.push(ToyTable::new(ToyTableMode::Lpm));
        self.tables.len() - 1
    }

    /// Add an unconnected interface; returns its global index.
    pub fn add_iface(&mut self, device: usize, kind: ToyIfaceKind) -> u32 {
        self.ifaces.push(ToyIface {
            device,
            kind,
            peer: None,
        });
        (self.ifaces.len() - 1) as u32
    }

    /// Create a point-to-point link; returns `(a_side, b_side)`.
    pub fn add_link(&mut self, a: usize, b: usize) -> (u32, u32) {
        let ai = self.add_iface(a, ToyIfaceKind::P2p);
        let bi = self.add_iface(b, ToyIfaceKind::P2p);
        self.ifaces[ai as usize].peer = Some(bi);
        self.ifaces[bi as usize].peer = Some(ai);
        (ai, bi)
    }

    /// Append a rule to a device's table.
    pub fn add_rule(&mut self, device: usize, rule: ToyRule) {
        self.tables[device].push(rule);
    }

    /// Finalize every table into first-match order.
    pub fn finalize(&mut self) {
        for t in &mut self.tables {
            t.finalize();
        }
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of interfaces (global index space).
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// Look up an interface by global index.
    pub fn iface(&self, i: u32) -> &ToyIface {
        &self.ifaces[i as usize]
    }

    /// A device's rule table.
    pub fn table(&self, device: usize) -> &ToyTable {
        &self.tables[device]
    }

    /// Mutable access to a device's rule table (for fault injection).
    pub fn table_mut(&mut self, device: usize) -> &mut ToyTable {
        &mut self.tables[device]
    }

    /// All walks of `packet` starting at `start`, one per ECMP branch
    /// combination, in depth-first leg order.
    ///
    /// # Panics
    ///
    /// Panics if the network has not been finalized.
    pub fn walks(
        &self,
        space: &ToySpace,
        start: usize,
        packet: ToyPacket,
        max_hops: usize,
    ) -> Vec<Walk> {
        let mut out = Vec::new();
        let mut hops = Vec::new();
        self.dfs(space, start, packet, max_hops, &mut hops, &mut out);
        out
    }

    fn dfs(
        &self,
        space: &ToySpace,
        device: usize,
        packet: ToyPacket,
        max_hops: usize,
        hops: &mut Vec<(usize, usize)>,
        out: &mut Vec<Walk>,
    ) {
        if hops.len() >= max_hops {
            out.push(Walk {
                hops: hops.clone(),
                end: WalkEnd::HopLimit,
            });
            return;
        }
        let Some(rule_idx) = self.tables[device].winner(space, packet) else {
            out.push(Walk {
                hops: hops.clone(),
                end: WalkEnd::Unmatched { device },
            });
            return;
        };
        hops.push((device, rule_idx));
        let rule = &self.tables[device].rules_unchecked()[rule_idx];
        match &rule.action {
            ToyAction::Drop => {
                out.push(Walk {
                    hops: hops.clone(),
                    end: WalkEnd::Dropped {
                        device,
                        rule: rule_idx,
                    },
                });
            }
            ToyAction::Forward(legs) => {
                for &leg in legs {
                    let ifc = self.iface(leg);
                    match ifc.kind {
                        ToyIfaceKind::P2p => match ifc.peer {
                            Some(peer) => {
                                let next = self.iface(peer).device;
                                self.dfs(space, next, packet, max_hops, hops, out);
                            }
                            None => out.push(Walk {
                                hops: hops.clone(),
                                end: WalkEnd::Exited { device, iface: leg },
                            }),
                        },
                        ToyIfaceKind::Host | ToyIfaceKind::Loopback => out.push(Walk {
                            hops: hops.clone(),
                            end: WalkEnd::Delivered { device, iface: leg },
                        }),
                        ToyIfaceKind::External => out.push(Walk {
                            hops: hops.clone(),
                            end: WalkEnd::Exited { device, iface: leg },
                        }),
                    }
                }
            }
        }
        hops.pop();
    }

    /// The single walk of a packet through an ECMP-free network.
    ///
    /// # Panics
    ///
    /// Panics if any branch point is hit (more than one walk exists).
    pub fn walk(&self, space: &ToySpace, start: usize, packet: ToyPacket, max_hops: usize) -> Walk {
        let mut ws = self.walks(space, start, packet, max_hops);
        assert_eq!(ws.len(), 1, "network has ECMP fan-out; use walks()");
        ws.pop().unwrap()
    }

    /// Packets injected at `start` that some walk delivers out `iface`.
    pub fn delivered_at(
        &self,
        space: &ToySpace,
        start: usize,
        iface: u32,
        max_hops: usize,
    ) -> PacketSet {
        PacketSet::from_pred(space, |p| {
            self.walks(space, start, p, max_hops).iter().any(|w| {
                w.end
                    == WalkEnd::Delivered {
                        device: self.iface(iface).device,
                        iface,
                    }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ToyPrefix;

    fn space() -> ToySpace {
        ToySpace::default()
    }

    /// in → a → b → out, default-routed.
    fn chain() -> (ToyNet, usize, u32) {
        let mut net = ToyNet::new();
        let a = net.add_device();
        let b = net.add_device();
        let _ingress = net.add_iface(a, ToyIfaceKind::Host);
        let egress = net.add_iface(b, ToyIfaceKind::Host);
        let (ab, _) = net.add_link(a, b);
        net.add_rule(a, ToyRule::forward(ToyPrefix::new(0, 0), vec![ab]));
        net.add_rule(b, ToyRule::forward(ToyPrefix::new(0, 0), vec![egress]));
        net.finalize();
        (net, a, egress)
    }

    #[test]
    fn chain_delivers_everything() {
        let s = space();
        let (net, a, egress) = chain();
        let w = net.walk(&s, a, s.pack(7, 3, 1), 16);
        assert!(w.delivered());
        assert_eq!(w.devices(), vec![0, 1]);
        assert_eq!(net.delivered_at(&s, a, egress, 16).len() as u32, s.size());
    }

    #[test]
    fn drop_and_unmatched_end_walks() {
        let s = space();
        let mut net = ToyNet::new();
        let a = net.add_device();
        net.add_rule(a, ToyRule::null_route(ToyPrefix::new(0b1, 1)));
        net.finalize();
        let hit = net.walk(&s, a, s.pack(0xFF, 0, 0), 16);
        assert_eq!(hit.end, WalkEnd::Dropped { device: a, rule: 0 });
        let miss = net.walk(&s, a, s.pack(0, 0, 0), 16);
        assert_eq!(miss.end, WalkEnd::Unmatched { device: a });
        assert!(miss.hops.is_empty());
    }

    #[test]
    fn ecmp_diamond_yields_two_walks() {
        let s = space();
        let mut net = ToyNet::new();
        let a = net.add_device();
        let b = net.add_device();
        let c = net.add_device();
        let d = net.add_device();
        let egress = net.add_iface(d, ToyIfaceKind::Host);
        let (ab, _) = net.add_link(a, b);
        let (ac, _) = net.add_link(a, c);
        let (bd, _) = net.add_link(b, d);
        let (cd, _) = net.add_link(c, d);
        let any = ToyPrefix::new(0, 0);
        net.add_rule(a, ToyRule::forward(any, vec![ab, ac]));
        net.add_rule(b, ToyRule::forward(any, vec![bd]));
        net.add_rule(c, ToyRule::forward(any, vec![cd]));
        net.add_rule(d, ToyRule::forward(any, vec![egress]));
        net.finalize();
        let ws = net.walks(&s, a, 0, 16);
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.delivered() && w.hops.len() == 3));
        assert_eq!(ws[0].devices(), vec![a, b, d]);
        assert_eq!(ws[1].devices(), vec![a, c, d]);
    }

    #[test]
    fn loops_hit_the_hop_limit() {
        let s = space();
        let mut net = ToyNet::new();
        let a = net.add_device();
        let b = net.add_device();
        let (ab, ba) = net.add_link(a, b);
        let any = ToyPrefix::new(0, 0);
        net.add_rule(a, ToyRule::forward(any, vec![ab]));
        net.add_rule(b, ToyRule::forward(any, vec![ba]));
        net.finalize();
        let w = net.walk(&s, a, 0, 8);
        assert_eq!(w.end, WalkEnd::HopLimit);
        assert_eq!(w.hops.len(), 8);
    }

    #[test]
    fn dangling_and_external_ifaces_exit() {
        let s = space();
        let mut net = ToyNet::new();
        let a = net.add_device();
        let wan = net.add_iface(a, ToyIfaceKind::External);
        let dangling = net.add_iface(a, ToyIfaceKind::P2p);
        net.add_rule(a, ToyRule::forward(ToyPrefix::new(0b0, 1), vec![wan]));
        net.add_rule(a, ToyRule::forward(ToyPrefix::new(0b1, 1), vec![dangling]));
        net.finalize();
        let lo = net.walk(&s, a, s.pack(0, 0, 0), 8);
        assert_eq!(
            lo.end,
            WalkEnd::Exited {
                device: a,
                iface: wan
            }
        );
        let hi = net.walk(&s, a, s.pack(0xFF, 0, 0), 8);
        assert_eq!(
            hi.end,
            WalkEnd::Exited {
                device: a,
                iface: dangling
            }
        );
    }
}
