//! Deterministic address assignment shared by the generators.
//!
//! Address plan (mirroring common datacenter practice):
//!
//! * host subnets:   `10.0.0.0/8`, one `/24` per ToR, indexed;
//! * loopbacks:      `172.16.0.0/12`, one `/32` per device, indexed;
//! * p2p links v4:   `100.64.0.0/10` (the RFC 6598 block), one `/31`
//!   per link, indexed;
//! * p2p links v6:   `fd00:cafe::/64`, one `/126` per link, indexed;
//! * WAN prefixes:   `52.<i>.0.0/16`, one per simulated Internet route.

use netmodel::addr::ipv4;
use netmodel::Prefix;

/// The `/24` hosted subnet of the `idx`-th ToR.
pub fn host_subnet(idx: u32) -> Prefix {
    assert!(idx < 65536, "too many ToRs for the 10.0.0.0/8 plan");
    Prefix::v4(ipv4(10, (idx / 256) as u8, (idx % 256) as u8, 0), 24)
}

/// The loopback `/32` of the `idx`-th device.
pub fn loopback(idx: u32) -> Prefix {
    assert!(
        idx < (1 << 20),
        "too many devices for the 172.16.0.0/12 plan"
    );
    let base = u32::from_be_bytes([172, 16, 0, 0]);
    Prefix::v4(base + idx, 32)
}

/// The IPv4 `/31` of the `idx`-th point-to-point link, plus the two
/// endpoint addresses `(a, b)`.
pub fn p2p_v4(idx: u32) -> (Prefix, u128, u128) {
    assert!(idx < (1 << 21), "too many links for the 100.64.0.0/10 plan");
    let base = u32::from_be_bytes([100, 64, 0, 0]);
    let a = base + idx * 2;
    (Prefix::v4(a, 31), a as u128, (a + 1) as u128)
}

/// The IPv6 `/126` of the `idx`-th point-to-point link, plus the two
/// endpoint addresses `(a, b)`.
pub fn p2p_v6(idx: u32) -> (Prefix, u128, u128) {
    let base: u128 = 0xfd00_cafe_0000_0000_0000_0000_0000_0000;
    let a = base + (idx as u128) * 4;
    (Prefix::v6(a, 126), a, a + 1)
}

/// The `idx`-th simulated wide-area (Internet) prefix.
pub fn wan_prefix(idx: u32) -> Prefix {
    assert!(idx < 256, "too many WAN prefixes for the 52.0.0.0/8 plan");
    Prefix::v4(ipv4(52, idx as u8, 0, 0), 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_subnets_are_disjoint() {
        let a = host_subnet(0);
        let b = host_subnet(1);
        let c = host_subnet(256);
        assert_ne!(a, b);
        assert!(!a.contains(&b) && !b.contains(&a));
        assert_eq!(a.to_string(), "10.0.0.0/24");
        assert_eq!(b.to_string(), "10.0.1.0/24");
        assert_eq!(c.to_string(), "10.1.0.0/24");
    }

    #[test]
    fn loopbacks_are_unique_host_routes() {
        let a = loopback(0);
        let b = loopback(999);
        assert_eq!(a.len(), 32);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "172.16.0.0/32");
    }

    #[test]
    fn p2p_v4_contains_both_endpoints() {
        let (p, a, b) = p2p_v4(7);
        assert_eq!(p.len(), 31);
        assert!(p.contains_addr(a) && p.contains_addr(b));
        assert_eq!(b, a + 1);
        let (p2, a2, _) = p2p_v4(8);
        assert!(!p2.contains_addr(a));
        assert!(!p.contains_addr(a2));
    }

    #[test]
    fn p2p_v6_contains_both_endpoints() {
        let (p, a, b) = p2p_v6(3);
        assert_eq!(p.len(), 126);
        assert!(p.contains_addr(a) && p.contains_addr(b));
        let (p2, _, _) = p2p_v6(4);
        assert_ne!(p, p2);
    }

    #[test]
    fn wan_prefixes_are_slash_16s() {
        assert_eq!(wan_prefix(0).to_string(), "52.0.0.0/16");
        assert_eq!(wan_prefix(9).to_string(), "52.9.0.0/16");
    }

    #[test]
    #[should_panic]
    fn host_subnet_overflow_panics() {
        let _ = host_subnet(65536);
    }
}
