//! k-ary fat-tree generator — the synthetic networks of §8.
//!
//! A k-ary fat-tree (k even) has k pods, each with k/2 ToR (edge) and
//! k/2 aggregation routers, plus (k/2)² core routers: 5k²/4 routers
//! total. Each ToR hosts one `/24` prefix (as in the paper's benchmark
//! setup); routing follows §7.1 — BGP-equivalent shortest paths with
//! ECMP plus a static default route towards all northbound neighbors
//! (cores default out of simulated WAN uplinks).

use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::{Network, Prefix};
use routing::{Origination, RibBuilder, Scope, StaticRoute, StaticTarget};

use crate::addressing;

/// Parameters for [`fattree`].
#[derive(Clone, Copy, Debug)]
pub struct FatTreeParams {
    /// Fat-tree arity; must be even and ≥ 2. Routers: 5k²/4.
    pub k: u32,
    /// Give every device a loopback /32 redistributed into BGP.
    pub loopbacks: bool,
    /// Configure /31 + /126 connected routes on every link.
    pub connected: bool,
}

impl FatTreeParams {
    /// The paper's §8 setup: hosted prefixes only.
    pub fn paper(k: u32) -> FatTreeParams {
        FatTreeParams {
            k,
            loopbacks: false,
            connected: false,
        }
    }
}

/// A generated fat-tree: the network plus handles used by tests and
/// benchmarks.
pub struct FatTree {
    /// The compiled network (FIBs installed, finalized).
    pub net: Network,
    /// The parameters the tree was generated from.
    pub params: FatTreeParams,
    /// ToR routers with their hosted prefix and host-facing interface.
    pub tors: Vec<(DeviceId, Prefix, IfaceId)>,
    /// Aggregation routers, pod by pod.
    pub aggs: Vec<DeviceId>,
    /// Core (spine) routers.
    pub cores: Vec<DeviceId>,
    /// All fabric links, in creation order (the order addressing uses).
    pub links: Vec<(IfaceId, IfaceId)>,
}

impl FatTree {
    /// Number of routers in the tree (5k²/4).
    pub fn device_count(&self) -> usize {
        self.net.topology().device_count()
    }
}

/// The configured-but-uncompiled fat-tree control plane: the
/// construction stage [`fattree`] and [`fattree_with_engine`] share,
/// stopping just short of FIB compilation. Exposed so callers can
/// perturb the *configuration* before compiling — the config-coverage
/// audit injects a deliberately dark static route this way, and any
/// experiment that needs a non-canonical fat-tree config starts here.
pub struct FatTreeBuilder {
    /// The configured control plane; mutate it (extra statics,
    /// originations, scopes) before finishing.
    pub rb: RibBuilder,
    /// The parameters the tree is being generated from.
    pub params: FatTreeParams,
    /// ToR routers with their hosted prefix and host-facing interface.
    pub tors: Vec<(DeviceId, Prefix, IfaceId)>,
    /// Aggregation routers, pod by pod.
    pub aggs: Vec<DeviceId>,
    /// Core (spine) routers.
    pub cores: Vec<DeviceId>,
    /// All fabric links, in creation order (the order addressing uses).
    pub links: Vec<(IfaceId, IfaceId)>,
}

impl FatTreeBuilder {
    /// Compile FIBs and return the finished [`FatTree`].
    pub fn build(self) -> FatTree {
        FatTree {
            net: self.rb.build(),
            params: self.params,
            tors: self.tors,
            aggs: self.aggs,
            cores: self.cores,
            links: self.links,
        }
    }

    /// Compile FIBs, keeping the control plane resident as an
    /// incremental [`routing::RoutingEngine`]. The network is
    /// bit-identical to [`FatTreeBuilder::build`]'s.
    pub fn into_engine(self) -> (FatTree, routing::RoutingEngine) {
        let (engine, net) = self
            .rb
            .into_engine()
            .expect("fat-tree control plane is valid by construction");
        (
            FatTree {
                net,
                params: self.params,
                tors: self.tors,
                aggs: self.aggs,
                cores: self.cores,
                links: self.links,
            },
            engine,
        )
    }
}

/// Generate a k-ary fat-tree network with computed forwarding state.
pub fn fattree(params: FatTreeParams) -> FatTree {
    let _span = netobs::span!("topogen_fattree");
    fattree_builder(params).build()
}

/// [`fattree`], but handing the control plane to a resident incremental
/// [`routing::RoutingEngine`] instead of discarding it after the batch
/// compile. The returned network is bit-identical to [`fattree`]'s; the
/// engine then re-converges it under link/device failure deltas.
pub fn fattree_with_engine(params: FatTreeParams) -> (FatTree, routing::RoutingEngine) {
    let _span = netobs::span!("topogen_fattree");
    fattree_builder(params).into_engine()
}

/// The shared construction stage: topology, control plane, and the
/// handles the [`FatTree`] carries, as a perturbable [`FatTreeBuilder`].
pub fn fattree_builder(params: FatTreeParams) -> FatTreeBuilder {
    let k = params.k;
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;

    let mut topo = Topology::new();
    let mut tors = Vec::new();
    let mut aggs = Vec::new();
    let mut cores = Vec::new();

    // Devices.
    for p in 0..k {
        for t in 0..half {
            let d = topo.add_device_in_group(format!("tor-{p}-{t}"), Role::Tor, Some(p));
            tors.push(d);
        }
        for a in 0..half {
            let d = topo.add_device_in_group(format!("agg-{p}-{a}"), Role::Aggregation, Some(p));
            aggs.push(d);
        }
    }
    for g in 0..half {
        for c in 0..half {
            let d = topo.add_device(format!("core-{g}-{c}"), Role::Spine);
            cores.push(d);
        }
    }

    // Host and WAN edges.
    let tor_hosts: Vec<IfaceId> = tors
        .iter()
        .map(|&d| topo.add_iface(d, "hosts", IfaceKind::Host))
        .collect();
    let core_uplinks: Vec<IfaceId> = cores
        .iter()
        .map(|&d| topo.add_iface(d, "wan", IfaceKind::External))
        .collect();

    // Fabric links (collect for connected-route addressing).
    let mut links: Vec<(IfaceId, IfaceId)> = Vec::new();
    for p in 0..k {
        for t in 0..half {
            let tor = tors[(p * half + t) as usize];
            for a in 0..half {
                let agg = aggs[(p * half + a) as usize];
                links.push(topo.add_link(tor, agg));
            }
        }
        for a in 0..half {
            let agg = aggs[(p * half + a) as usize];
            for c in 0..half {
                let core = cores[(a * half + c) as usize];
                links.push(topo.add_link(agg, core));
            }
        }
    }

    // Loopback ifaces (needed for loopback routes and connected self
    // routes).
    let need_loopbacks = params.loopbacks || params.connected;
    let loopback_ifaces: Vec<IfaceId> = if need_loopbacks {
        (0..topo.device_count())
            .map(|d| topo.add_iface(DeviceId(d as u32), "lo", IfaceKind::Loopback))
            .collect()
    } else {
        Vec::new()
    };

    // Control plane.
    let mut rb = RibBuilder::new(topo);
    for (i, &d) in tors.iter().enumerate() {
        rb.set_tier(d, 0);
        rb.set_asn(d, 65000 + i as u32);
    }
    for &d in &aggs {
        rb.set_tier(d, 1);
        let pod = rb.topology().device(d).group.unwrap();
        rb.set_asn(d, 64500 + pod);
    }
    for &d in &cores {
        rb.set_tier(d, 2);
        rb.set_asn(d, 64000);
    }

    // Hosted prefixes.
    let mut tor_info = Vec::new();
    for (i, &d) in tors.iter().enumerate() {
        let prefix = addressing::host_subnet(i as u32);
        rb.originate(Origination::new(
            d,
            prefix,
            RouteClass::HostSubnet,
            Some(tor_hosts[i]),
            Scope::All,
        ));
        tor_info.push((d, prefix, tor_hosts[i]));
    }

    // Loopbacks.
    if params.loopbacks {
        for (d, &lo) in loopback_ifaces.iter().enumerate() {
            let dev = DeviceId(d as u32);
            rb.originate(Origination::new(
                dev,
                addressing::loopback(d as u32),
                RouteClass::Loopback,
                Some(lo),
                Scope::All,
            ));
        }
    }

    // Connected /31 + /126 routes on every fabric link.
    if params.connected {
        for (i, &(ai, bi)) in links.iter().enumerate() {
            let a_dev = rb.topology().iface(ai).device.0 as usize;
            let b_dev = rb.topology().iface(bi).device.0 as usize;
            let deliver = (loopback_ifaces[a_dev], loopback_ifaces[b_dev]);
            let (p4, a4, b4) = addressing::p2p_v4(i as u32);
            rb.add_p2p_connected(ai, bi, p4, (a4, b4), deliver);
            let (p6, a6, b6) = addressing::p2p_v6(i as u32);
            rb.add_p2p_connected(ai, bi, p6, (a6, b6), deliver);
        }
    }

    // Static defaults: northbound ECMP for ToRs and aggs; cores default
    // out their WAN uplink.
    add_northbound_defaults(&mut rb, &tors, 0);
    add_northbound_defaults(&mut rb, &aggs, 1);
    for (i, &d) in cores.iter().enumerate() {
        rb.add_static(StaticRoute {
            device: d,
            prefix: Prefix::v4_default(),
            target: StaticTarget::Ifaces(vec![core_uplinks[i]]),
            class: RouteClass::StaticDefault,
        });
    }

    FatTreeBuilder {
        rb,
        params,
        tors: tor_info,
        aggs,
        cores,
        links,
    }
}

/// Install a static default route on every device in `devs` pointing at
/// all neighbors in the next tier up.
fn add_northbound_defaults(rb: &mut RibBuilder, devs: &[DeviceId], my_tier: u8) {
    let mut routes = Vec::new();
    for &d in devs {
        let outs: Vec<IfaceId> = rb
            .topology()
            .neighbors(d)
            .into_iter()
            .filter(|&(_, n)| rb.tier(n) == my_tier + 1)
            .map(|(i, _)| i)
            .collect();
        assert!(!outs.is_empty(), "device without northbound neighbors");
        routes.push(StaticRoute {
            device: d,
            prefix: Prefix::v4_default(),
            target: StaticTarget::Ifaces(outs),
            class: RouteClass::StaticDefault,
        });
    }
    for r in routes {
        rb.add_static(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane::{traceroute, Forwarder, TraceOutcome};
    use netbdd::Bdd;
    use netmodel::header::Packet;
    use netmodel::{Location, MatchSets};

    #[test]
    fn k4_has_canonical_shape() {
        let ft = fattree(FatTreeParams::paper(4));
        // 5k²/4 = 20 routers: 8 ToR, 8 agg, 4 core.
        assert_eq!(ft.device_count(), 20);
        assert_eq!(ft.tors.len(), 8);
        assert_eq!(ft.aggs.len(), 8);
        assert_eq!(ft.cores.len(), 4);
        // Links: k³/2 = 32 p2p links → 64 p2p ifaces + 8 host + 4 wan.
        assert_eq!(ft.net.topology().iface_count(), 64 + 8 + 4);
    }

    #[test]
    fn every_device_has_a_default_route() {
        let ft = fattree(FatTreeParams::paper(4));
        for (d, _) in ft.net.topology().devices() {
            let has_default = ft
                .net
                .device_rules(d)
                .iter()
                .any(|r| r.matches.dst.map(|p| p.is_default()).unwrap_or(false));
            assert!(
                has_default,
                "{} lacks a default route",
                ft.net.topology().device(d).name
            );
        }
    }

    #[test]
    fn tor_prefixes_ecmp_upward() {
        let ft = fattree(FatTreeParams::paper(4));
        // On a ToR, a remote pod's prefix should ECMP across both aggs.
        let (tor0, _, _) = ft.tors[0];
        let (_, remote_prefix, _) = ft.tors[7]; // last ToR, other pod
        let rule = ft
            .net
            .device_rules(tor0)
            .iter()
            .find(|r| r.matches.dst == Some(remote_prefix))
            .expect("remote prefix missing")
            .clone();
        assert_eq!(
            rule.action.out_ifaces().len(),
            2,
            "expected ECMP over k/2 aggs"
        );
    }

    #[test]
    fn cross_pod_traceroute_delivers() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let (tor0, _, _) = ft.tors[0];
        let (dst_tor, dst_prefix, dst_host) = ft.tors[7];
        let pkt = Packet::v4_to(dst_prefix.nth_addr(55) as u32);
        let res = traceroute(&mut bdd, &ft.net, &ms, Location::device(tor0), pkt, 16);
        match res.outcome {
            TraceOutcome::Delivered { device, iface } => {
                assert_eq!(device, dst_tor);
                assert_eq!(iface, dst_host);
            }
            o => panic!("expected delivery at the remote ToR, got {o:?}"),
        }
        // tor → agg → core → agg → tor: 5 hops.
        assert_eq!(res.hops.len(), 5);
    }

    #[test]
    fn same_pod_traceroute_stays_in_pod() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let (tor0, _, _) = ft.tors[0];
        let (_, dst_prefix, _) = ft.tors[1]; // same pod
        let pkt = Packet::v4_to(dst_prefix.nth_addr(1) as u32);
        let res = traceroute(&mut bdd, &ft.net, &ms, Location::device(tor0), pkt, 16);
        assert!(res.delivered());
        assert_eq!(res.hops.len(), 3); // tor → agg → tor
    }

    #[test]
    fn unknown_destinations_exit_via_core_wan() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let (tor0, _, _) = ft.tors[0];
        let pkt = Packet::v4_to(netmodel::addr::ipv4(8, 8, 8, 8));
        let res = traceroute(&mut bdd, &ft.net, &ms, Location::device(tor0), pkt, 16);
        match res.outcome {
            TraceOutcome::Exited { device, .. } => {
                assert!(ft.cores.contains(&device), "default must exit at a core");
            }
            o => panic!("expected exit via WAN, got {o:?}"),
        }
    }

    #[test]
    fn symbolic_and_concrete_engines_agree() {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let fwd = Forwarder::new(&ft.net, &ms);
        let (tor0, _, _) = ft.tors[0];
        let (_, dst_prefix, dst_host) = ft.tors[5];
        let set = netmodel::header::dst_in(&mut bdd, &dst_prefix);
        let res = dataplane::reach(&mut bdd, &fwd, Location::device(tor0), set, 16);
        let delivered = res.delivered_at(&mut bdd, dst_host);
        assert!(
            bdd.equal(delivered, set),
            "whole prefix must arrive symbolically"
        );
        // And the concrete engine agrees for a sample packet.
        let pkt = Packet::v4_to(dst_prefix.nth_addr(9) as u32);
        let tr = traceroute(&mut bdd, &ft.net, &ms, Location::device(tor0), pkt, 16);
        assert!(tr.delivered());
    }

    #[test]
    fn optional_loopbacks_and_connected_routes() {
        let ft = fattree(FatTreeParams {
            k: 4,
            loopbacks: true,
            connected: true,
        });
        // Every device now has loopback + connected rules.
        for (d, _) in ft.net.topology().devices() {
            let rules = ft.net.device_rules(d);
            assert!(rules.iter().any(|r| r.class == RouteClass::Connected));
            assert!(rules.iter().any(|r| r.class == RouteClass::Loopback));
        }
        // Connected routes exist in both families.
        let (d0, _, _) = ft.tors[0];
        let classes: Vec<netmodel::Family> = ft
            .net
            .device_rules(d0)
            .iter()
            .filter(|r| r.class == RouteClass::Connected)
            .map(|r| r.matches.dst.unwrap().family())
            .collect();
        assert!(classes.contains(&netmodel::Family::V4));
        assert!(classes.contains(&netmodel::Family::V6));
    }

    #[test]
    fn engine_variant_is_bit_identical_and_reconverges() {
        let ft = fattree(FatTreeParams::paper(4));
        let (eft, mut engine) = fattree_with_engine(FatTreeParams::paper(4));
        for (d, _) in ft.net.topology().devices() {
            assert_eq!(ft.net.device_rules(d), eft.net.device_rules(d));
        }
        // Flap one fabric link: degraded state matches a from-scratch
        // rebuild, recovery restores the healthy network exactly.
        let mut net = eft.net;
        let (ai, bi) = eft.links[0];
        let a = net.topology().iface(ai).device;
        let b = net.topology().iface(bi).device;
        let diff = engine
            .apply(&mut net, &routing::TopologyDelta::LinkDown { a, b })
            .unwrap();
        assert!(!diff.is_empty());
        let rebuilt = engine.full_rebuild().unwrap();
        for (d, _) in ft.net.topology().devices() {
            assert_eq!(net.device_rules(d), rebuilt.device_rules(d));
        }
        engine
            .apply(&mut net, &routing::TopologyDelta::LinkUp { a, b })
            .unwrap();
        for (d, _) in ft.net.topology().devices() {
            assert_eq!(net.device_rules(d), ft.net.device_rules(d));
        }
    }

    #[test]
    fn scale_sanity_k8() {
        let ft = fattree(FatTreeParams::paper(8));
        assert_eq!(ft.device_count(), 80);
        assert_eq!(ft.tors.len(), 32);
        // Every ToR holds a route for every hosted prefix + default.
        let (tor0, _, _) = ft.tors[0];
        assert_eq!(ft.net.device_rules(tor0).len(), 32 + 1);
    }
}
