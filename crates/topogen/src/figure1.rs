//! The motivating example of §2 (Figure 1).
//!
//! A three-level datacenter: leaf routers at the bottom, spines in the
//! middle, two border routers (B1, B2) on top connected to the WAN. The
//! WAN announces the default route to the borders, which propagate it
//! downward. **B2, however, has a static default route that is null
//! routed**, so B2 drops Internet-bound packets instead of forwarding
//! them — and does not propagate the WAN default to the spines. While B1
//! is alive nobody notices: spines send WAN traffic to B1. When B1
//! fails, the whole datacenter loses the WAN.
//!
//! The point of the example: the natural connectivity test suite (leaf↔
//! leaf, leaf→WAN, border→leaf) passes and covers every *device*, yet
//! never exercises B2's default route — device coverage is 100% while
//! rule coverage flags B2. See `examples/outage_case_study.rs`.

use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::{Network, Prefix};
use routing::{Origination, RibBuilder, Scope, StaticRoute, StaticTarget};

use crate::addressing;

/// The Figure-1 network and its cast of characters.
pub struct Figure1 {
    /// The compiled network.
    pub net: Network,
    /// Leaf routers with hosted prefix and host iface.
    pub leafs: Vec<(DeviceId, Prefix, IfaceId)>,
    /// Spine routers.
    pub spines: Vec<DeviceId>,
    /// Border router B1 (correctly configured).
    pub b1: DeviceId,
    /// Border router B2 (null-routed default when the bug is enabled).
    pub b2: DeviceId,
    /// The WAN-facing interface of B1.
    pub b1_wan: IfaceId,
    /// The WAN-facing interface of B2.
    pub b2_wan: IfaceId,
}

/// Build the Figure-1 example: `leafs` leaf routers, `spines` spine
/// routers, and two border routers. When `b2_null_routed` is true (the
/// paper's buggy state), B2 carries a null-routed static default and
/// does not propagate the WAN default; when false, B2 is configured like
/// B1 (the fixed network).
pub fn figure1(leafs: u32, spines: u32, b2_null_routed: bool) -> Figure1 {
    assert!(leafs >= 2 && spines >= 1);
    let mut topo = Topology::new();
    let leaf_ids: Vec<DeviceId> = (0..leafs)
        .map(|i| topo.add_device(format!("L{}", i + 1), Role::Tor))
        .collect();
    let spine_ids: Vec<DeviceId> = (0..spines)
        .map(|i| topo.add_device(format!("S{}", i + 1), Role::Spine))
        .collect();
    let b1 = topo.add_device("B1", Role::Border);
    let b2 = topo.add_device("B2", Role::Border);

    let leaf_hosts: Vec<IfaceId> = leaf_ids
        .iter()
        .map(|&d| topo.add_iface(d, "hosts", IfaceKind::Host))
        .collect();
    let b1_wan = topo.add_iface(b1, "wan", IfaceKind::External);
    let b2_wan = topo.add_iface(b2, "wan", IfaceKind::External);

    for &l in &leaf_ids {
        for &s in &spine_ids {
            topo.add_link(l, s);
        }
    }
    for &s in &spine_ids {
        topo.add_link(s, b1);
        topo.add_link(s, b2);
    }

    let mut rb = RibBuilder::new(topo);
    for (i, &l) in leaf_ids.iter().enumerate() {
        rb.set_tier(l, 0);
        rb.set_asn(l, 65000 + i as u32);
    }
    for &s in &spine_ids {
        rb.set_tier(s, 1);
        rb.set_asn(s, 64900);
    }
    for &b in [b1, b2].iter() {
        rb.set_tier(b, 2);
        rb.set_asn(b, 64800);
    }

    // Each leaf advertises its prefix.
    let mut leaf_info = Vec::new();
    for (i, &l) in leaf_ids.iter().enumerate() {
        let prefix = addressing::host_subnet(i as u32);
        rb.originate(Origination::new(
            l,
            prefix,
            RouteClass::HostSubnet,
            Some(leaf_hosts[i]),
            Scope::All,
        ));
        leaf_info.push((l, prefix, leaf_hosts[i]));
    }

    // The WAN announces the default route to the border routers, which
    // propagate it downward — except that a null-routed B2 neither uses
    // nor propagates it.
    let mut default_from_wan = Origination::new(
        b1,
        Prefix::v4_default(),
        RouteClass::BgpDefault,
        Some(b1_wan),
        Scope::All,
    );
    let mut default_from_b2 = Origination::new(
        b2,
        Prefix::v4_default(),
        RouteClass::BgpDefault,
        Some(b2_wan),
        Scope::All,
    );
    if b2_null_routed {
        // B2's static null default wins locally and stops propagation.
        default_from_wan.blocked.push(b2);
        default_from_b2 = default_from_wan.clone(); // only B1 originates
        rb.add_static(StaticRoute {
            device: b2,
            prefix: Prefix::v4_default(),
            target: StaticTarget::Null,
            class: RouteClass::StaticDefault,
        });
        rb.originate(default_from_wan);
        let _ = default_from_b2;
    } else {
        rb.originate(default_from_wan);
        rb.originate(default_from_b2);
    }

    let net = rb.build();
    Figure1 {
        net,
        leafs: leaf_info,
        spines: spine_ids,
        b1,
        b2,
        b1_wan,
        b2_wan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane::{traceroute, TraceOutcome};
    use netbdd::Bdd;
    use netmodel::header::Packet;
    use netmodel::{Location, MatchSets};

    #[test]
    fn healthy_network_uses_both_borders() {
        let f = figure1(4, 2, false);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&f.net, &mut bdd);
        // Spines ECMP the default over both borders.
        for &s in &f.spines {
            let d = f
                .net
                .device_rules(s)
                .iter()
                .find(|r| r.matches.dst.map(|p| p.is_default()).unwrap_or(false))
                .unwrap()
                .clone();
            assert_eq!(d.action.out_ifaces().len(), 2);
        }
        let _ = ms;
    }

    #[test]
    fn buggy_network_routes_wan_traffic_via_b1_only() {
        let f = figure1(4, 2, true);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&f.net, &mut bdd);
        for &s in &f.spines {
            let d = f
                .net
                .device_rules(s)
                .iter()
                .find(|r| r.matches.dst.map(|p| p.is_default()).unwrap_or(false))
                .unwrap()
                .clone();
            let outs = d.action.out_ifaces();
            assert_eq!(outs.len(), 1, "spine default must point at B1 only");
            assert_eq!(f.net.topology().neighbor_of(outs[0]), Some(f.b1));
        }
        // B2 null-routes Internet traffic.
        let pkt = Packet::v4_to(netmodel::addr::ipv4(8, 8, 8, 8));
        let res = traceroute(&mut bdd, &f.net, &ms, Location::device(f.b2), pkt, 8);
        assert!(matches!(res.outcome, TraceOutcome::Dropped { device, .. } if device == f.b2));
    }

    #[test]
    fn buggy_network_still_passes_connectivity_tests() {
        // The three §2 tests all pass on the buggy network — that is the
        // point of the example.
        let f = figure1(4, 2, true);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&f.net, &mut bdd);
        // Leaf-to-leaf.
        let (l1, _, _) = f.leafs[0];
        let (l2, p2, h2) = f.leafs[1];
        let pkt = Packet::v4_to(p2.nth_addr(7) as u32);
        let res = traceroute(&mut bdd, &f.net, &ms, Location::device(l1), pkt, 8);
        assert!(
            matches!(res.outcome, TraceOutcome::Delivered { device, iface }
            if device == l2 && iface == h2)
        );
        // Leaf-to-WAN (exits somewhere).
        let inet = Packet::v4_to(netmodel::addr::ipv4(1, 1, 1, 1));
        let res = traceroute(&mut bdd, &f.net, &ms, Location::device(l1), inet, 8);
        assert!(matches!(res.outcome, TraceOutcome::Exited { device, .. } if device == f.b1));
        // Border-to-leaf from B2 (this is what "covers" B2 in device
        // coverage).
        let res = traceroute(&mut bdd, &f.net, &ms, Location::device(f.b2), pkt, 8);
        assert!(res.delivered());
    }

    #[test]
    fn b1_failure_disconnects_the_wan_in_the_buggy_network() {
        let f = figure1(4, 2, true);
        let mut net = f.net.clone();
        // Fail B1: remove all of B1's rules (it stops forwarding) and
        // null its links by replacing spine defaults? Simulate node
        // failure simply: packets reaching B1 die. Here we empty B1's
        // table.
        crate::faults::clear_device(&mut net, f.b1);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        let (l1, _, _) = f.leafs[0];
        let inet = Packet::v4_to(netmodel::addr::ipv4(1, 1, 1, 1));
        let res = traceroute(&mut bdd, &net, &ms, Location::device(l1), inet, 8);
        // Traffic dies at B1 (unmatched) or at B2 (null route): the DC is
        // cut off either way.
        assert!(
            !res.delivered() && !matches!(res.outcome, TraceOutcome::Exited { .. }),
            "WAN must be unreachable, got {:?}",
            res.outcome
        );
    }

    #[test]
    fn fixed_network_survives_b1_failure() {
        let f = figure1(4, 2, false);
        let mut net = f.net.clone();
        crate::faults::clear_device(&mut net, f.b1);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&net, &mut bdd);
        // With B1 gone the spines still ECMP over B1 and B2; a flow
        // hashed onto B2 exits fine. Check symbolically: some portion of
        // Internet traffic still exits via B2.
        let fwd = dataplane::Forwarder::new(&net, &ms);
        let (l1, _, _) = f.leafs[0];
        let inet = netmodel::header::dst_in(&mut bdd, &"1.0.0.0/8".parse().unwrap());
        let res = dataplane::reach(&mut bdd, &fwd, Location::device(l1), inet, 16);
        let exited = res.exited_union(&mut bdd);
        assert!(
            bdd.equal(exited, inet),
            "all Internet traffic must still exit via B2"
        );
    }
}
