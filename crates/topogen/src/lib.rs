//! # topogen — topology and network generators
//!
//! Deterministic generators for the networks the paper builds, tests,
//! and benchmarks on:
//!
//! * [`mod@fattree`] — k-ary fat-trees (Al-Fares et al.), the synthetic
//!   networks of the performance evaluation (§8): each ToR hosts one
//!   prefix, routing works as in §7.1 (eBGP-equivalent shortest paths
//!   with ECMP, static defaults northbound).
//! * [`mod@regional`] — the Azure-style regional network of the case study
//!   (§7.1): multiple datacenters of ToR/Aggregation pods under spines,
//!   interconnected by regional hubs, with WAN routers on top; dual-stack
//!   /31 + /126 point-to-point addressing, loopbacks, host subnets, and
//!   WAN routes leaked only to the upper tiers.
//! * [`mod@figure1`] — the motivating example of §2: leaf/spine/border with
//!   B2's null-routed static default, the outage that rule coverage
//!   catches and device coverage does not.
//! * [`acl`] — ACL-style deny entries in front of the FIB (the taxonomy's
//!   port-blocking tests).
//! * [`faults`] — fault injection on built networks (null-route a
//!   prefix, drop rules, remove a device's routes) for studying how
//!   coverage metrics react to state changes.
//!
//! All generators are pure functions of their parameters — same inputs,
//! same network — so experiments are reproducible bit-for-bit.

#![deny(missing_docs)]

pub mod acl;
pub mod addressing;
pub mod fattree;
pub mod faults;
pub mod figure1;
pub mod regional;

pub use fattree::{
    fattree, fattree_builder, fattree_with_engine, FatTree, FatTreeBuilder, FatTreeParams,
};
pub use figure1::{figure1, Figure1};
pub use regional::{regional, Regional, RegionalParams};
