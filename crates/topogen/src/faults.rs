//! Fault injection on built networks.
//!
//! Coverage metrics exist to catch state bugs before they bite; these
//! helpers introduce the bugs. They operate on a finalized
//! [`netmodel::Network`] by rewriting device tables, so any generated
//! network can be broken in controlled ways for tests, examples, and
//! ablation benchmarks.

use netmodel::rule::{Action, RouteClass, Rule, Table, TableMode};
use netmodel::topology::DeviceId;
use netmodel::{Network, Prefix};

/// Replace the action of every rule on `device` matching `prefix`
/// exactly with a drop (a null route). Returns how many rules changed.
pub fn null_route(net: &mut Network, device: DeviceId, prefix: Prefix) -> usize {
    rewrite_device(net, device, |rule| {
        if rule.matches.dst == Some(prefix) {
            rule.action = Action::Drop;
            true
        } else {
            false
        }
    })
}

/// Delete every rule on `device` whose destination prefix is `prefix`.
pub fn remove_route(net: &mut Network, device: DeviceId, prefix: Prefix) -> usize {
    let rules = net.device_rules(device).to_vec();
    let before = rules.len();
    let mut table = Table::new(TableMode::Priority); // preserve existing order
    for r in rules {
        if r.matches.dst != Some(prefix) {
            table.push(r);
        }
    }
    let removed = before - table.len();
    table.finalize();
    net.set_table(device, table);
    removed
}

/// Empty a device's forwarding table entirely (simulates a crashed or
/// blackholing node: packets reaching it match nothing and die).
pub fn clear_device(net: &mut Network, device: DeviceId) {
    let mut table = Table::new(TableMode::Lpm);
    table.finalize();
    net.set_table(device, table);
}

/// Change every rule of a class on a device to drop (e.g. null-route all
/// WAN routes). Returns how many rules changed.
pub fn null_route_class(net: &mut Network, device: DeviceId, class: RouteClass) -> usize {
    rewrite_device(net, device, |rule| {
        if rule.class == class {
            rule.action = Action::Drop;
            true
        } else {
            false
        }
    })
}

fn rewrite_device(
    net: &mut Network,
    device: DeviceId,
    mut f: impl FnMut(&mut Rule) -> bool,
) -> usize {
    let mut rules = net.device_rules(device).to_vec();
    let mut changed = 0;
    for r in &mut rules {
        if f(r) {
            changed += 1;
        }
    }
    let mut table = Table::new(TableMode::Priority); // keep the existing order
    for r in rules {
        table.push(r);
    }
    table.finalize();
    net.set_table(device, table);
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{fattree, FatTreeParams};

    #[test]
    fn null_route_flips_action_to_drop() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, prefix, _) = ft.tors[1];
        let changed = null_route(&mut ft.net, tor, prefix);
        assert_eq!(changed, 1);
        let rule = ft
            .net
            .device_rules(tor)
            .iter()
            .find(|r| r.matches.dst == Some(prefix))
            .unwrap();
        assert!(rule.action.is_drop());
    }

    #[test]
    fn remove_route_deletes_exactly_one() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, prefix, _) = ft.tors[2];
        let before = ft.net.device_rules(tor).len();
        let removed = remove_route(&mut ft.net, tor, prefix);
        assert_eq!(removed, 1);
        assert_eq!(ft.net.device_rules(tor).len(), before - 1);
        assert!(!ft
            .net
            .device_rules(tor)
            .iter()
            .any(|r| r.matches.dst == Some(prefix)));
    }

    #[test]
    fn clear_device_empties_the_table() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let core = ft.cores[0];
        clear_device(&mut ft.net, core);
        assert!(ft.net.device_rules(core).is_empty());
    }

    #[test]
    fn null_route_class_hits_all_members() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, _, _) = ft.tors[0];
        let subnet_rules = ft
            .net
            .device_rules(tor)
            .iter()
            .filter(|r| r.class == RouteClass::HostSubnet)
            .count();
        let changed = null_route_class(&mut ft.net, tor, RouteClass::HostSubnet);
        assert_eq!(changed, subnet_rules);
    }

    #[test]
    fn fault_injection_preserves_rule_order() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, prefix, _) = ft.tors[0];
        let before: Vec<_> = ft
            .net
            .device_rules(tor)
            .iter()
            .map(|r| r.matches.dst)
            .collect();
        null_route(&mut ft.net, tor, prefix);
        let after: Vec<_> = ft
            .net
            .device_rules(tor)
            .iter()
            .map(|r| r.matches.dst)
            .collect();
        assert_eq!(before, after);
    }
}
