//! Security ACLs on top of generated networks.
//!
//! Figure 2's taxonomy includes ACL-flavoured tests ("the access control
//! list A1 on router R1 must have an entry that blocks packets to port
//! 23", "router R1 must drop all packets to port 23"). This module
//! installs ACL-style deny entries ahead of a device's forwarding rules,
//! preserving first-match semantics: the device's table is rebuilt in
//! priority mode with the deny entries first, followed by the original
//! LPM-ordered routes — equivalent to an ingress ACL stage in front of
//! the FIB.

use netmodel::rule::{Action, MatchFields, RouteClass, Rule, Table, TableMode};
use netmodel::topology::DeviceId;
use netmodel::Network;

/// One ACL deny entry.
#[derive(Clone, Debug)]
pub struct AclEntry {
    /// Destination prefix to constrain the deny to; `None` blocks the
    /// port everywhere.
    pub dst: Option<netmodel::Prefix>,
    /// IP protocol to match (e.g. 6 for TCP); `None` matches all.
    pub proto: Option<u8>,
    /// Destination-port range to block.
    pub dport: (u16, u16),
}

impl AclEntry {
    /// Block one TCP destination port.
    pub fn block_tcp_port(port: u16) -> AclEntry {
        AclEntry {
            dst: None,
            proto: Some(6),
            dport: (port, port),
        }
    }

    /// Block one TCP destination port toward a specific prefix — a
    /// bogon-filter-style entry that leaves all other destinations alone.
    pub fn block_tcp_port_to(prefix: netmodel::Prefix, port: u16) -> AclEntry {
        AclEntry {
            dst: Some(prefix),
            proto: Some(6),
            dport: (port, port),
        }
    }
}

/// Install deny entries ahead of `device`'s existing rules. Returns the
/// indices of the newly created ACL rules in the rebuilt table (they are
/// always the first `entries.len()` rules).
pub fn install_acl(net: &mut Network, device: DeviceId, entries: &[AclEntry]) -> Vec<u32> {
    let existing = net.device_rules(device).to_vec();
    let mut table = Table::new(TableMode::Priority);
    for e in entries {
        table.push(Rule {
            matches: MatchFields {
                dst: e.dst,
                proto: e.proto,
                dport: Some(e.dport),
                ..MatchFields::default()
            },
            action: Action::Drop,
            class: RouteClass::Other,
        });
    }
    for r in existing {
        table.push(r);
    }
    table.finalize();
    net.set_table(device, table);
    (0..entries.len() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::{fattree, FatTreeParams};
    use netbdd::Bdd;
    use netmodel::header::Packet;
    use netmodel::{Location, MatchSets};

    #[test]
    fn acl_blocks_matching_traffic_and_spares_the_rest() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, _, _) = ft.tors[0];
        let (_, remote, _) = ft.tors[7];
        install_acl(&mut ft.net, tor, &[AclEntry::block_tcp_port(23)]);
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        // Telnet to the remote prefix dies at the ACL.
        let telnet = Packet {
            proto: 6,
            dport: 23,
            ..Packet::v4_to(remote.nth_addr(1) as u32)
        };
        let res = dataplane::traceroute(&mut bdd, &ft.net, &ms, Location::device(tor), telnet, 16);
        assert!(
            matches!(res.outcome, dataplane::TraceOutcome::Dropped { device, .. }
            if device == tor)
        );
        // HTTPS sails through.
        let https = Packet {
            proto: 6,
            dport: 443,
            ..telnet
        };
        let res2 = dataplane::traceroute(&mut bdd, &ft.net, &ms, Location::device(tor), https, 16);
        assert!(res2.delivered());
    }

    #[test]
    fn acl_entries_come_first_and_shrink_route_match_sets() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, _, _) = ft.tors[0];
        let before_rules = ft.net.device_rules(tor).len();
        let ids = install_acl(&mut ft.net, tor, &[AclEntry::block_tcp_port(23)]);
        assert_eq!(ids, vec![0]);
        assert_eq!(ft.net.device_rules(tor).len(), before_rules + 1);
        assert!(ft.net.device_rules(tor)[0].action.is_drop());
        // The routes behind the ACL no longer match port-23 packets.
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let route_id = netmodel::RuleId {
            device: tor,
            index: 1,
        };
        let m = ms.get(route_id);
        let telnet_set = {
            let p = netmodel::header::proto_is(&mut bdd, 6);
            let d = netmodel::header::dport_in(&mut bdd, 23, 23);
            bdd.and(p, d)
        };
        assert!(
            !bdd.intersects(m, telnet_set),
            "ACL must shadow port 23 in later rules"
        );
    }

    #[test]
    fn proto_wildcard_blocks_udp_too() {
        let mut ft = fattree(FatTreeParams::paper(4));
        let (tor, _, _) = ft.tors[0];
        install_acl(
            &mut ft.net,
            tor,
            &[AclEntry {
                dst: None,
                proto: None,
                dport: (161, 162),
            }],
        );
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let (_, remote, _) = ft.tors[5];
        for proto in [6u8, 17] {
            let pkt = Packet {
                proto,
                dport: 161,
                ..Packet::v4_to(remote.nth_addr(2) as u32)
            };
            let res = dataplane::traceroute(&mut bdd, &ft.net, &ms, Location::device(tor), pkt, 16);
            assert!(matches!(
                res.outcome,
                dataplane::TraceOutcome::Dropped { .. }
            ));
        }
    }
}
