//! The Azure-style regional network of the case study (§7.1).
//!
//! A region interconnects several datacenters. Each datacenter is a
//! hierarchical Clos: ToRs at the bottom connected to hosts, aggregation
//! routers grouping ToRs into pods, spines on top of the pods. Spines
//! connect to a layer of regional hub routers which interconnect the
//! datacenters; hubs connect to wide-area (WAN) backbone routers that
//! provide Internet connectivity.
//!
//! Route classes present (the raw material of the §7.2 gap analysis):
//!
//! * **internal routes** — ToR host subnets and per-device loopbacks,
//!   advertised everywhere;
//! * **connected routes** — statically configured /31 (IPv4) and /126
//!   (IPv6) prefixes on every point-to-point link, not redistributed;
//! * **wide-area routes** — advertised by WAN routers to the hub and
//!   spine layers only, never leaked into pods;
//! * **static defaults** — on every router, towards all northbound
//!   neighbors, as the fail-safe.

use netmodel::rule::RouteClass;
use netmodel::topology::{DeviceId, IfaceId, IfaceKind, Role, Topology};
use netmodel::{Network, Prefix};
use routing::{Origination, RibBuilder, Scope, StaticRoute, StaticTarget};

use crate::addressing;

/// Shape of a regional network.
#[derive(Clone, Copy, Debug)]
pub struct RegionalParams {
    /// Number of datacenters in the region.
    pub datacenters: u32,
    /// ToR/aggregation pods per datacenter.
    pub pods_per_dc: u32,
    /// ToR routers per pod.
    pub tors_per_pod: u32,
    /// Aggregation routers per pod.
    pub aggs_per_pod: u32,
    /// Spine routers per datacenter.
    pub spines_per_dc: u32,
    /// Regional hub routers interconnecting the datacenters.
    pub hubs: u32,
    /// WAN routers above the hubs.
    pub wan_routers: u32,
    /// Number of simulated wide-area prefixes advertised by the WAN.
    pub wan_prefixes: u32,
    /// Host-facing ports per ToR (a power of two). The ToR's /24 is
    /// split into equal slices, one per port; the /24 itself is
    /// aggregated into BGP. Several ports per ToR reproduce the case
    /// study's finding that host-facing interfaces go untested.
    pub host_ports_per_tor: u32,
    /// Configure /31 + /126 connected routes (and self routes) per link.
    pub connected: bool,
    /// Redistribute per-device loopback /32s into BGP.
    pub loopbacks: bool,
}

impl Default for RegionalParams {
    /// A small but fully featured region: 2 DCs × 2 pods × (4 ToR + 2
    /// agg) + 2 spines, 2 hubs, 2 WAN routers, 8 WAN prefixes.
    fn default() -> RegionalParams {
        RegionalParams {
            datacenters: 2,
            pods_per_dc: 2,
            tors_per_pod: 4,
            aggs_per_pod: 2,
            spines_per_dc: 2,
            hubs: 2,
            wan_routers: 2,
            wan_prefixes: 40,
            connected: true,
            loopbacks: true,
            host_ports_per_tor: 4,
        }
    }
}

/// A generated regional network with handles for tests and experiments.
pub struct Regional {
    /// The compiled network.
    pub net: Network,
    /// The parameters the region was generated from.
    pub params: RegionalParams,
    /// ToRs with hosted /24 prefix and *first* host-facing interface.
    pub tors: Vec<(DeviceId, Prefix, IfaceId)>,
    /// All host-facing ports of each ToR (parallel to `tors`).
    pub tor_host_ports: Vec<Vec<IfaceId>>,
    /// Flat list of (ToR, host port, the /24-slice it serves).
    pub host_port_slices: Vec<(DeviceId, IfaceId, Prefix)>,
    /// Aggregation routers, pod by pod.
    pub aggs: Vec<DeviceId>,
    /// Spine routers, datacenter by datacenter.
    pub spines: Vec<DeviceId>,
    /// Regional hub routers.
    pub hubs: Vec<DeviceId>,
    /// WAN routers.
    pub wans: Vec<DeviceId>,
    /// The simulated wide-area prefixes the WAN advertises.
    pub wan_prefixes: Vec<Prefix>,
    /// Per-device loopback interface (parallel to device ids), when
    /// loopbacks or connected routes are enabled.
    pub loopback_ifaces: Vec<IfaceId>,
    /// All fabric links, in creation order (the order addressing uses).
    pub links: Vec<(IfaceId, IfaceId)>,
}

/// Generate a regional network per §7.1.
pub fn regional(params: RegionalParams) -> Regional {
    let _span = netobs::span!("topogen_regional");
    assert!(params.datacenters >= 1 && params.pods_per_dc >= 1);
    assert!(params.tors_per_pod >= 1 && params.aggs_per_pod >= 1);
    assert!(params.spines_per_dc >= 1 && params.hubs >= 1 && params.wan_routers >= 1);
    assert!(
        params.host_ports_per_tor.is_power_of_two() && params.host_ports_per_tor <= 64,
        "host ports per ToR must be a power of two ≤ 64"
    );

    let mut topo = Topology::new();
    let mut tors: Vec<DeviceId> = Vec::new();
    let mut aggs: Vec<DeviceId> = Vec::new();
    let mut spines: Vec<DeviceId> = Vec::new();

    // Devices, grouped by datacenter.
    for dc in 0..params.datacenters {
        for pod in 0..params.pods_per_dc {
            for t in 0..params.tors_per_pod {
                tors.push(topo.add_device_in_group(
                    format!("dc{dc}-pod{pod}-tor{t}"),
                    Role::Tor,
                    Some(dc),
                ));
            }
            for a in 0..params.aggs_per_pod {
                aggs.push(topo.add_device_in_group(
                    format!("dc{dc}-pod{pod}-agg{a}"),
                    Role::Aggregation,
                    Some(dc),
                ));
            }
        }
        for s in 0..params.spines_per_dc {
            spines.push(topo.add_device_in_group(
                format!("dc{dc}-spine{s}"),
                Role::Spine,
                Some(dc),
            ));
        }
    }
    let hubs: Vec<DeviceId> = (0..params.hubs)
        .map(|h| topo.add_device(format!("hub{h}"), Role::RegionalHub))
        .collect();
    let wans: Vec<DeviceId> = (0..params.wan_routers)
        .map(|w| topo.add_device(format!("wan{w}"), Role::Wan))
        .collect();

    // Host edges (several ports per ToR) and WAN edges.
    let tor_host_ports: Vec<Vec<IfaceId>> = tors
        .iter()
        .map(|&d| {
            (0..params.host_ports_per_tor)
                .map(|p| topo.add_iface(d, format!("hosts{p}"), IfaceKind::Host))
                .collect()
        })
        .collect();
    let wan_uplinks: Vec<IfaceId> = wans
        .iter()
        .map(|&d| topo.add_iface(d, "internet", IfaceKind::External))
        .collect();

    // Links.
    let mut links: Vec<(IfaceId, IfaceId)> = Vec::new();
    let tors_per_dc = params.pods_per_dc * params.tors_per_pod;
    let aggs_per_dc = params.pods_per_dc * params.aggs_per_pod;
    for dc in 0..params.datacenters {
        for pod in 0..params.pods_per_dc {
            for t in 0..params.tors_per_pod {
                let tor = tors[(dc * tors_per_dc + pod * params.tors_per_pod + t) as usize];
                for a in 0..params.aggs_per_pod {
                    let agg = aggs[(dc * aggs_per_dc + pod * params.aggs_per_pod + a) as usize];
                    links.push(topo.add_link(tor, agg));
                }
            }
        }
        // Every agg connects to every spine of its DC.
        for pod in 0..params.pods_per_dc {
            for a in 0..params.aggs_per_pod {
                let agg = aggs[(dc * aggs_per_dc + pod * params.aggs_per_pod + a) as usize];
                for s in 0..params.spines_per_dc {
                    let spine = spines[(dc * params.spines_per_dc + s) as usize];
                    links.push(topo.add_link(agg, spine));
                }
            }
        }
        // Every spine connects to every hub.
        for s in 0..params.spines_per_dc {
            let spine = spines[(dc * params.spines_per_dc + s) as usize];
            for &hub in &hubs {
                links.push(topo.add_link(spine, hub));
            }
        }
    }
    // Every hub connects to every WAN router.
    for &hub in &hubs {
        for &wan in &wans {
            links.push(topo.add_link(hub, wan));
        }
    }

    // Loopbacks.
    let need_lo = params.connected || params.loopbacks;
    let loopback_ifaces: Vec<IfaceId> = if need_lo {
        (0..topo.device_count())
            .map(|d| topo.add_iface(DeviceId(d as u32), "lo", IfaceKind::Loopback))
            .collect()
    } else {
        Vec::new()
    };

    // Control plane: tiers and ASNs.
    let mut rb = RibBuilder::new(topo);
    for (i, &d) in tors.iter().enumerate() {
        rb.set_tier(d, 0);
        rb.set_asn(d, 65000 + i as u32);
    }
    for &d in &aggs {
        rb.set_tier(d, 1);
        rb.set_asn(d, 64800);
    }
    for &d in &spines {
        rb.set_tier(d, 2);
        rb.set_asn(d, 64700);
    }
    for &d in &hubs {
        rb.set_tier(d, 3);
        rb.set_asn(d, 64600);
    }
    for &d in &wans {
        rb.set_tier(d, 4);
        rb.set_asn(d, 8075);
    }

    // Internal routes: host subnets. Each ToR advertises its aggregate
    // /24 into BGP; locally the /24 is tiled by per-port slices (the
    // aggregate needs no local rule — LPM delivers via the slices).
    let slice_extra = params.host_ports_per_tor.trailing_zeros() as u8;
    let mut tor_info = Vec::new();
    let mut host_port_slices = Vec::new();
    for (i, &d) in tors.iter().enumerate() {
        let prefix = addressing::host_subnet(i as u32);
        rb.originate(Origination::new(
            d,
            prefix,
            RouteClass::HostSubnet,
            None,
            Scope::All,
        ));
        let slice_len = prefix.len() + slice_extra;
        let free = 32 - slice_len as u32;
        for (p, &port) in tor_host_ports[i].iter().enumerate() {
            let slice_bits = (prefix.bits() as u32) | ((p as u32) << free);
            let slice = Prefix::v4(slice_bits, slice_len);
            rb.add_static(StaticRoute {
                device: d,
                prefix: slice,
                target: StaticTarget::Ifaces(vec![port]),
                class: RouteClass::HostSubnet,
            });
            host_port_slices.push((d, port, slice));
        }
        tor_info.push((d, prefix, tor_host_ports[i][0]));
    }

    // Internal routes: loopbacks, redistributed into BGP.
    if params.loopbacks {
        for (d, &lo) in loopback_ifaces.iter().enumerate() {
            rb.originate(Origination::new(
                DeviceId(d as u32),
                addressing::loopback(d as u32),
                RouteClass::Loopback,
                Some(lo),
                Scope::All,
            ));
        }
    }

    // Connected routes per link, both families.
    if params.connected {
        for (i, &(ai, bi)) in links.iter().enumerate() {
            let a_dev = rb.topology().iface(ai).device.0 as usize;
            let b_dev = rb.topology().iface(bi).device.0 as usize;
            let deliver = (loopback_ifaces[a_dev], loopback_ifaces[b_dev]);
            let (p4, a4, b4) = addressing::p2p_v4(i as u32);
            rb.add_p2p_connected(ai, bi, p4, (a4, b4), deliver);
            let (p6, a6, b6) = addressing::p2p_v6(i as u32);
            rb.add_p2p_connected(ai, bi, p6, (a6, b6), deliver);
        }
    }

    // Wide-area routes: advertised by WAN routers; accepted by hubs and
    // spines (tier ≥ 2) but never leaked into pods.
    let mut wan_prefixes = Vec::new();
    for i in 0..params.wan_prefixes {
        let prefix = addressing::wan_prefix(i);
        for (w, &wan) in wans.iter().enumerate() {
            rb.originate(Origination::new(
                wan,
                prefix,
                RouteClass::Wan,
                Some(wan_uplinks[w]),
                Scope::MinTier(2),
            ));
        }
        wan_prefixes.push(prefix);
    }

    // Static defaults northbound everywhere; WAN routers default out to
    // the Internet.
    for (tier, devs) in [(0u8, &tors), (1, &aggs), (2, &spines), (3, &hubs)] {
        let mut routes = Vec::new();
        for &d in devs.iter() {
            let outs: Vec<IfaceId> = rb
                .topology()
                .neighbors(d)
                .into_iter()
                .filter(|&(_, n)| rb.tier(n) == tier + 1)
                .map(|(i, _)| i)
                .collect();
            assert!(!outs.is_empty());
            routes.push(StaticRoute {
                device: d,
                prefix: Prefix::v4_default(),
                target: StaticTarget::Ifaces(outs),
                class: RouteClass::StaticDefault,
            });
        }
        for r in routes {
            rb.add_static(r);
        }
    }
    for (w, &wan) in wans.iter().enumerate() {
        rb.add_static(StaticRoute {
            device: wan,
            prefix: Prefix::v4_default(),
            target: StaticTarget::Ifaces(vec![wan_uplinks[w]]),
            class: RouteClass::StaticDefault,
        });
    }

    let net = rb.build();
    Regional {
        net,
        params,
        tors: tor_info,
        tor_host_ports: tor_host_ports.clone(),
        host_port_slices,
        aggs,
        spines,
        hubs,
        wans,
        wan_prefixes,
        loopback_ifaces,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataplane::{traceroute, TraceOutcome};
    use netbdd::Bdd;
    use netmodel::header::Packet;
    use netmodel::{Location, MatchSets};

    fn small() -> Regional {
        regional(RegionalParams::default())
    }

    #[test]
    fn shape_matches_parameters() {
        let r = small();
        let p = r.params;
        assert_eq!(
            r.tors.len(),
            (p.datacenters * p.pods_per_dc * p.tors_per_pod) as usize
        );
        assert_eq!(
            r.aggs.len(),
            (p.datacenters * p.pods_per_dc * p.aggs_per_pod) as usize
        );
        assert_eq!(r.spines.len(), (p.datacenters * p.spines_per_dc) as usize);
        assert_eq!(r.hubs.len(), p.hubs as usize);
        assert_eq!(r.wans.len(), p.wan_routers as usize);
    }

    #[test]
    fn wan_routes_exist_only_in_upper_tiers() {
        let r = small();
        let wan_p = r.wan_prefixes[0];
        let has = |d: DeviceId| {
            r.net
                .device_rules(d)
                .iter()
                .any(|rl| rl.matches.dst == Some(wan_p))
        };
        for &s in &r.spines {
            assert!(has(s), "spines must carry WAN routes");
        }
        for &h in &r.hubs {
            assert!(has(h), "hubs must carry WAN routes");
        }
        for &(t, _, _) in &r.tors {
            assert!(!has(t), "ToRs must not see WAN routes");
        }
        for &a in &r.aggs {
            assert!(!has(a), "aggs must not see WAN routes");
        }
    }

    #[test]
    fn cross_dc_traffic_goes_through_hubs() {
        let r = small();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let (src, _, _) = r.tors[0];
        // Destination in the other datacenter (last ToR).
        let (dst, dst_prefix, _) = *r.tors.last().unwrap();
        let pkt = Packet::v4_to(dst_prefix.nth_addr(10) as u32);
        let res = traceroute(&mut bdd, &r.net, &ms, Location::device(src), pkt, 32);
        assert!(res.delivered(), "{:?}", res.outcome);
        let devices = res.devices();
        assert!(
            devices.iter().any(|d| r.hubs.contains(d)),
            "path must cross a hub"
        );
        assert_eq!(*devices.last().unwrap(), dst);
    }

    #[test]
    fn internet_bound_traffic_exits_at_wan() {
        let r = small();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let (src, _, _) = r.tors[0];
        let pkt = Packet::v4_to(netmodel::addr::ipv4(8, 8, 8, 8));
        let res = traceroute(&mut bdd, &r.net, &ms, Location::device(src), pkt, 32);
        match res.outcome {
            TraceOutcome::Exited { device, .. } => assert!(r.wans.contains(&device)),
            o => panic!("expected WAN exit, got {o:?}"),
        }
    }

    #[test]
    fn wan_prefix_traffic_routed_from_spine() {
        let r = small();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let pkt = Packet::v4_to(r.wan_prefixes[0].nth_addr(5) as u32);
        let res = traceroute(
            &mut bdd,
            &r.net,
            &ms,
            Location::device(r.spines[0]),
            pkt,
            32,
        );
        match res.outcome {
            TraceOutcome::Exited { device, .. } => assert!(r.wans.contains(&device)),
            o => panic!("expected WAN exit, got {o:?}"),
        }
        // The WAN rule (not the default) was exercised at the spine.
        let first_rule = r.net.rule(res.hops[0].rule);
        assert_eq!(first_rule.class, RouteClass::Wan);
    }

    #[test]
    fn connected_routes_present_on_both_ends_and_both_families() {
        let r = small();
        // Pick the first fabric link's /31: both end devices carry it.
        let (p4, _, _) = addressing::p2p_v4(0);
        let carriers: Vec<DeviceId> = r
            .net
            .topology()
            .devices()
            .filter(|&(d, _)| {
                r.net
                    .device_rules(d)
                    .iter()
                    .any(|rl| rl.class == RouteClass::Connected && rl.matches.dst == Some(p4))
            })
            .map(|(d, _)| d)
            .collect();
        assert_eq!(
            carriers.len(),
            2,
            "a /31 lives on exactly its two endpoints"
        );
        // v6 /126s exist too.
        let (p6, _, _) = addressing::p2p_v6(0);
        let v6_carriers = r
            .net
            .rules()
            .filter(|(_, rl)| rl.matches.dst == Some(p6))
            .count();
        assert_eq!(v6_carriers, 2);
    }

    #[test]
    fn loopbacks_reachable_from_other_dc() {
        let r = small();
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&r.net, &mut bdd);
        let (src, _, _) = r.tors[0];
        // Loopback of the last hub.
        let hub = *r.hubs.last().unwrap();
        let lo = addressing::loopback(hub.0);
        let pkt = Packet::v4_to(lo.bits() as u32);
        let res = traceroute(&mut bdd, &r.net, &ms, Location::device(src), pkt, 32);
        match res.outcome {
            TraceOutcome::Delivered { device, .. } => assert_eq!(device, hub),
            o => panic!("expected delivery at the hub loopback, got {o:?}"),
        }
    }

    #[test]
    fn every_router_has_exactly_one_default() {
        let r = small();
        for (d, _) in r.net.topology().devices() {
            let defaults = r
                .net
                .device_rules(d)
                .iter()
                .filter(|rl| rl.matches.dst.map(|p| p.is_default()).unwrap_or(false))
                .count();
            assert_eq!(defaults, 1, "{}", r.net.topology().device(d).name);
        }
    }
}
