//! System-level property tests for the §3.2 metric requirements:
//! monotonicity (adding tests never decreases any metric), boundedness
//! (all metrics in [0, 1] with the documented extremes), and
//! semantics-independence.

use netbdd::Bdd;
use netmodel::{header, Location, MatchSets, Prefix, RuleId};
use proptest::prelude::*;
use topogen::{fattree, FatTreeParams};
use yardstick::{Aggregator, Analyzer, CoverageTrace};

/// A randomly generated marking action against a k=4 fat-tree.
#[derive(Clone, Debug)]
enum Mark {
    /// Mark a dst prefix (prefix of one of the hosted /24s, possibly
    /// shorter/longer) at a device.
    Packet { device: u8, tor: u8, plen: u8 },
    /// Inspect rule `index` of a device.
    Rule { device: u8, index: u8 },
}

fn arb_mark() -> impl Strategy<Value = Mark> {
    prop_oneof![
        (0u8..20, 0u8..8, 8u8..32).prop_map(|(device, tor, plen)| Mark::Packet {
            device,
            tor,
            plen
        }),
        (0u8..20, 0u8..9).prop_map(|(device, index)| Mark::Rule { device, index }),
    ]
}

fn apply_marks(bdd: &mut Bdd, ft: &topogen::FatTree, marks: &[Mark]) -> CoverageTrace {
    let mut trace = CoverageTrace::new();
    for m in marks {
        match *m {
            Mark::Packet { device, tor, plen } => {
                let (_, base, _) = ft.tors[tor as usize % ft.tors.len()];
                let p = Prefix::v4(base.bits() as u32, plen.clamp(8, 32));
                let set = header::dst_in(bdd, &p);
                let d = netmodel::topology::DeviceId(device as u32 % 20);
                trace.add_packets(bdd, Location::device(d), set);
            }
            Mark::Rule { device, index } => {
                let d = netmodel::topology::DeviceId(device as u32 % 20);
                let n = ft.net.device_rules(d).len() as u32;
                if n > 0 {
                    trace.add_rule(RuleId {
                        device: d,
                        index: index as u32 % n,
                    });
                }
            }
        }
    }
    trace
}

fn all_metrics(
    bdd: &mut Bdd,
    ft: &topogen::FatTree,
    ms: &MatchSets,
    trace: &CoverageTrace,
) -> Vec<f64> {
    let a = Analyzer::new(&ft.net, ms, trace, bdd);
    let mut out = Vec::new();
    for agg in [
        Aggregator::Mean,
        Aggregator::Weighted,
        Aggregator::Fractional,
    ] {
        out.push(a.aggregate_rules(bdd, agg, |_, _| true).unwrap());
        out.push(a.aggregate_devices(bdd, agg, |_, _| true).unwrap());
        out.push(a.aggregate_out_ifaces(bdd, agg, |_, _| true).unwrap());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotonicity: extending a test suite never decreases any metric.
    #[test]
    fn adding_tests_is_monotone(
        marks in prop::collection::vec(arb_mark(), 0..12),
        extra in prop::collection::vec(arb_mark(), 1..6),
    ) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let t_before = apply_marks(&mut bdd, &ft, &marks);
        let mut both = marks.clone();
        both.extend(extra);
        let t_after = apply_marks(&mut bdd, &ft, &both);
        let before = all_metrics(&mut bdd, &ft, &ms, &t_before);
        let after = all_metrics(&mut bdd, &ft, &ms, &t_after);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a + 1e-12 >= *b, "metric decreased: {b} -> {a}");
        }
    }

    /// Boundedness: every metric lies in [0, 1]; the empty suite scores
    /// 0 and the all-marking suite scores 1.
    #[test]
    fn metrics_are_bounded(marks in prop::collection::vec(arb_mark(), 0..15)) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let trace = apply_marks(&mut bdd, &ft, &marks);
        for m in all_metrics(&mut bdd, &ft, &ms, &trace) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&m), "{m} out of range");
        }
    }

    /// Order independence: coverage is a function of the *set* of marks,
    /// not of their order (the union representation of §3.2).
    #[test]
    fn trace_order_does_not_matter(marks in prop::collection::vec(arb_mark(), 0..10)) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let t1 = apply_marks(&mut bdd, &ft, &marks);
        let mut rev = marks.clone();
        rev.reverse();
        let t2 = apply_marks(&mut bdd, &ft, &rev);
        prop_assert_eq!(
            all_metrics(&mut bdd, &ft, &ms, &t1),
            all_metrics(&mut bdd, &ft, &ms, &t2)
        );
    }

    /// Idempotence: marking the same things twice changes nothing.
    #[test]
    fn double_marking_is_idempotent(marks in prop::collection::vec(arb_mark(), 1..8)) {
        let ft = fattree(FatTreeParams::paper(4));
        let mut bdd = Bdd::new();
        let ms = MatchSets::compute(&ft.net, &mut bdd);
        let once = apply_marks(&mut bdd, &ft, &marks);
        let mut twice_marks = marks.clone();
        twice_marks.extend(marks.iter().cloned());
        let twice = apply_marks(&mut bdd, &ft, &twice_marks);
        prop_assert_eq!(
            all_metrics(&mut bdd, &ft, &ms, &once),
            all_metrics(&mut bdd, &ft, &ms, &twice)
        );
    }
}

#[test]
fn extremes_empty_is_zero_full_is_one() {
    let ft = fattree(FatTreeParams::paper(4));
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);

    let empty = CoverageTrace::new();
    for m in all_metrics(&mut bdd, &ft, &ms, &empty) {
        assert_eq!(m, 0.0);
    }

    let mut full = CoverageTrace::new();
    let everything = bdd.full();
    for (d, _) in ft.net.topology().devices() {
        full.add_packets(&mut bdd, Location::device(d), everything);
    }
    for m in all_metrics(&mut bdd, &ft, &ms, &full) {
        assert!((m - 1.0).abs() < 1e-12, "expected 1.0, got {m}");
    }
}

/// Semantics-independence (§3.2): a packet matching the default route
/// covers only the default route's residual match set, never the more
/// specific rules an implementation might have scanned past.
#[test]
fn semantics_based_not_implementation_based() {
    let ft = fattree(FatTreeParams::paper(4));
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let (tor, _, _) = ft.tors[0];
    // A packet outside every hosted prefix: hits the default route.
    let pkt = header::Packet::v4_to(netmodel::addr::ipv4(8, 8, 8, 8));
    let set = pkt.to_bdd(&mut bdd);
    let mut trace = CoverageTrace::new();
    trace.add_packets(&mut bdd, Location::device(tor), set);
    let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    let mut covered = 0;
    for id in ft.net.device_rule_ids(tor) {
        let c = a.rule_coverage(&mut bdd, id).unwrap();
        if c > 0.0 {
            covered += 1;
            // Only the default route may be (partially) covered.
            assert!(ft.net.rule(id).matches.dst.unwrap().is_default());
        }
    }
    assert_eq!(covered, 1, "exactly the default route is exercised");
}
