//! E9: one runnable instance of every cell of the paper's test taxonomy
//! (Figure 2), all feeding the same coverage machinery — plus the
//! compositionality laws of §3.2 that make mixing them sound.

use netbdd::Bdd;
use netmodel::header::{self, Packet};
use netmodel::{Location, MatchSets, RuleId};
use topogen::{fattree, FatTreeParams};
use yardstick::{Analyzer, CoverageTrace, Tracker};

use dataplane::{reach, traceroute, Forwarder};

struct Fixture {
    ft: topogen::FatTree,
    bdd: Bdd,
    ms: MatchSets,
}

fn fixture() -> Fixture {
    let ft = fattree(FatTreeParams::paper(4));
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    Fixture { ft, bdd, ms }
}

/// State inspection: "router R1's forwarding table must have the default
/// route entry".
#[test]
fn state_inspection_test() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let (tor, _, _) = ft.tors[0];
    let mut tracker = Tracker::new();
    let default = ft
        .net
        .device_rule_ids(tor)
        .find(|&id| {
            ft.net
                .rule(id)
                .matches
                .dst
                .map(|p| p.is_default())
                .unwrap_or(false)
        })
        .expect("default route must exist");
    tracker.mark_rule(default);
    // Inspecting the rule covers its entire (residual) match set.
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    assert_eq!(analyzer.rule_coverage(&mut bdd, default), Some(1.0));
}

/// Local concrete: "router R1 must forward a given packet with dest. D
/// via neighbor N1".
#[test]
fn local_concrete_test() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let fwd = Forwarder::new(&ft.net, &ms);
    let (tor, _, _) = ft.tors[0];
    let (_, remote, _) = ft.tors[7];
    let pkt = Packet::v4_to(remote.nth_addr(1) as u32);
    let set = pkt.to_bdd(&mut bdd);
    let step = fwd.step(&mut bdd, tor, None, set);
    assert_eq!(step.transitions.len(), 1);
    // The packet leaves via an aggregation neighbor.
    let out = &step.transitions[0].outcomes[0];
    match out {
        dataplane::Outcome::Hop { next, .. } => {
            assert!(ft.aggs.contains(&next.device));
        }
        o => panic!("expected a hop, got {o:?}"),
    }
    // Its coverage: exactly that one packet on that one rule.
    let mut tracker = Tracker::new();
    tracker.mark_packet(&mut bdd, Location::device(tor), set);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    let cov = analyzer
        .rule_coverage(&mut bdd, step.transitions[0].rule)
        .unwrap();
    assert!(
        cov > 0.0 && cov < 1e-6,
        "one packet is a sliver of a /24 rule"
    );
}

/// Local symbolic: "router R1 must forward all packets to prefix P1 via
/// neighbor N1" — and its coverage equals the full rule.
#[test]
fn local_symbolic_test() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let fwd = Forwarder::new(&ft.net, &ms);
    let (tor, _, _) = ft.tors[0];
    let (_, remote, _) = ft.tors[7];
    let set = header::dst_in(&mut bdd, &remote);
    let step = fwd.step(&mut bdd, tor, None, set);
    assert_eq!(step.transitions.len(), 1);
    assert!(step.unmatched.is_false());
    let rule = step.transitions[0].rule;
    let mut tracker = Tracker::new();
    tracker.mark_packet(&mut bdd, Location::device(tor), set);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    assert_eq!(analyzer.rule_coverage(&mut bdd, rule), Some(1.0));
}

/// End-to-end concrete: "ping between two endpoints must succeed".
#[test]
fn end_to_end_concrete_test() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let (src, _, _) = ft.tors[0];
    let (dst, remote, _) = ft.tors[7];
    let pkt = Packet {
        proto: 1,
        ..Packet::v4_to(remote.nth_addr(9) as u32)
    };
    let res = traceroute(&mut bdd, &ft.net, &ms, Location::device(src), pkt, 16);
    assert!(res.delivered());
    assert_eq!(*res.devices().last().unwrap(), dst);
    // Coverage: one rule per hop, one packet each.
    let mut tracker = Tracker::new();
    for hop in &res.hops {
        let set = hop.packet.to_bdd(&mut bdd);
        tracker.mark_packet(&mut bdd, hop.location, set);
    }
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    for hop in &res.hops {
        assert!(analyzer.rule_coverage(&mut bdd, hop.rule).unwrap() > 0.0);
    }
}

/// End-to-end symbolic: "all packets in a defined set must succeed
/// between two endpoints".
#[test]
fn end_to_end_symbolic_test() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let fwd = Forwarder::new(&ft.net, &ms);
    let (src, _, _) = ft.tors[0];
    let (_, remote, host) = ft.tors[7];
    let set = header::dst_in(&mut bdd, &remote);
    let res = reach(&mut bdd, &fwd, Location::device(src), set, 16);
    let delivered = res.delivered_at(&mut bdd, host);
    assert!(bdd.equal(delivered, set));
    // Per-hop marks cover every rule on every ECMP path fully.
    let mut tracker = Tracker::new();
    tracker.mark_packet_set(&mut bdd, &res.per_hop);
    let trace = tracker.into_trace();
    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    for (rule, _) in &res.exercised {
        assert_eq!(analyzer.rule_coverage(&mut bdd, *rule), Some(1.0));
    }
}

/// §3.2 law (i): the coverage of a symbolic test equals the combined
/// coverage of concrete tests that collectively cover the same packets.
#[test]
fn compositionality_symbolic_equals_union_of_concrete() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let (tor, _, _) = ft.tors[0];
    // A /30 has 4 addresses — enumerate them concretely.
    let (_, remote, _) = ft.tors[3];
    let base = remote.bits() as u32;

    let mut symbolic = CoverageTrace::new();
    let p30 = header::dst_in(&mut bdd, &netmodel::Prefix::v4(base, 30));
    symbolic.add_packets(&mut bdd, Location::device(tor), p30);

    let mut concrete = CoverageTrace::new();
    for a in 0..4u32 {
        let one = header::dst_in(&mut bdd, &netmodel::Prefix::v4(base + a, 32));
        concrete.add_packets(&mut bdd, Location::device(tor), one);
    }

    let a_sym = Analyzer::new(&ft.net, &ms, &symbolic, &mut bdd);
    let sym_cov: Vec<_> = ft
        .net
        .device_rule_ids(tor)
        .map(|id| a_sym.rule_coverage(&mut bdd, id))
        .collect();
    let a_conc = Analyzer::new(&ft.net, &ms, &concrete, &mut bdd);
    let conc_cov: Vec<_> = ft
        .net
        .device_rule_ids(tor)
        .map(|id| a_conc.rule_coverage(&mut bdd, id))
        .collect();
    assert_eq!(sym_cov, conc_cov);
}

/// §3.2 law (ii): the coverage of a state-inspection test equals a
/// symbolic test over all packets the state can affect.
#[test]
fn compositionality_inspection_equals_symbolic_over_match_set() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let (tor, _, _) = ft.tors[0];
    let rule = RuleId {
        device: tor,
        index: 0,
    };

    let mut inspect = CoverageTrace::new();
    inspect.add_rule(rule);

    let mut symbolic = CoverageTrace::new();
    let m = ms.get(rule);
    symbolic.add_packets(&mut bdd, Location::device(tor), m);

    let a1 = Analyzer::new(&ft.net, &ms, &inspect, &mut bdd);
    let c1 = a1.rule_coverage(&mut bdd, rule);
    let a2 = Analyzer::new(&ft.net, &ms, &symbolic, &mut bdd);
    let c2 = a2.rule_coverage(&mut bdd, rule);
    assert_eq!(c1, c2);
    assert_eq!(c1, Some(1.0));
}

/// Mixing all four kinds in one trace never double-counts: coverage of
/// the union is the union of coverage.
#[test]
fn mixed_test_types_merge_without_double_counting() {
    let Fixture { ft, mut bdd, ms } = fixture();
    let (tor, _, _) = ft.tors[0];
    let (_, remote, _) = ft.tors[7];
    let rule = ft
        .net
        .device_rule_ids(tor)
        .find(|&id| ft.net.rule(id).matches.dst == Some(remote))
        .unwrap();

    // Mark the same /24 twice via different test styles plus markRule.
    let mut trace = CoverageTrace::new();
    let set = header::dst_in(&mut bdd, &remote);
    trace.add_packets(&mut bdd, Location::device(tor), set);
    let one = Packet::v4_to(remote.nth_addr(3) as u32).to_bdd(&mut bdd);
    trace.add_packets(&mut bdd, Location::device(tor), one);
    trace.add_rule(rule);
    trace.add_rule(rule);

    let analyzer = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    // Coverage is exactly 1.0 — overlap collapsed, nothing exceeds the
    // match set.
    assert_eq!(analyzer.rule_coverage(&mut bdd, rule), Some(1.0));
}
