//! Integration tests for the beyond-paper tooling: gap reports feeding
//! new tests (the §7.2 loop, automated), semantic diffs guiding change
//! validation, ATU witnesses, and the drift digest — all working
//! together on generated networks.

use netbdd::Bdd;
use netmodel::header::Packet;
use netmodel::{Location, MatchSets};
use topogen::{fattree, regional, FatTreeParams, RegionalParams};
use yardstick::{Aggregator, Analyzer, CoverageTrace, Tracker};

use dataplane::{semantic_diff, traceroute, Forwarder};
use testsuite::{default_route_check, tor_reachability, NetworkInfo, TestContext};

/// The full §7.2 loop, closed automatically: run a suite, take the gap
/// report's witness packets, traceroute them as new "tests", and watch
/// coverage strictly improve — the gap report is actionable by
/// construction.
#[test]
fn gap_witnesses_are_actionable_tests() {
    let ft = fattree(FatTreeParams::paper(4));
    let info = NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..NetworkInfo::default()
    };
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);

    // Seed suite: reachability only (leaves default routes untested).
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    assert!(tor_reachability(&mut bdd, &mut ctx).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let mut trace = tracker.into_trace();

    let before = {
        let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
        let cov = a
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
            .unwrap();
        // Collect witnesses for the top gaps (they are default routes).
        let gaps = a.gap_report(&mut bdd, 10, 2, |_, _| true);
        assert!(!gaps.entries.is_empty());
        let witnesses: Vec<(netmodel::topology::DeviceId, Packet)> = gaps
            .entries
            .iter()
            .map(|e| (e.rule.device, e.witness.expect("witness")))
            .collect();
        (cov, witnesses)
    };

    // "Write the new tests": traceroute each witness from its device,
    // marking coverage per hop like any concrete test.
    for (device, pkt) in &before.1 {
        let res = traceroute(&mut bdd, &ft.net, &ms, Location::device(*device), *pkt, 32);
        for hop in &res.hops {
            let set = hop.packet.to_bdd(&mut bdd);
            trace.add_packets(&mut bdd, hop.location, set);
        }
    }
    let a2 = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    let after = a2
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    assert!(
        after > before.0,
        "witness-driven tests must improve rule coverage ({} -> {after})",
        before.0
    );
    // Specifically: every gap rule whose witness we traced is now hit.
    for (device, pkt) in &before.1 {
        let covered = a2.trace().packets.at_device(&mut bdd, *device);
        assert!(pkt.matches(&bdd, covered));
    }
}

/// Change validation end to end on the regional network: the semantic
/// diff isolates the affected space, and coverage of that space answers
/// "did the suite test what changed?" for both a well-tested and an
/// untested change.
#[test]
fn diff_guided_change_validation() {
    let r = regional(RegionalParams::default());
    let info = bench::regional_info(&r);
    let mut bdd = Bdd::new();
    let old_ms = MatchSets::compute(&r.net, &mut bdd);

    // Change A: reroute an internal prefix (tested by the suite).
    let (_, internal_prefix, _) = r.tors[0];
    let mut change_a = r.net.clone();
    topogen::faults::null_route(&mut change_a, r.spines[0], internal_prefix);
    // Change B: null-route a WAN prefix (untested by the suite).
    let wan_prefix = r.wan_prefixes[0];
    let mut change_b = r.net.clone();
    topogen::faults::null_route(&mut change_b, r.spines[0], wan_prefix);

    for (label, changed_net, expect_tested) in
        [("internal", change_a, true), ("wan", change_b, false)]
    {
        let new_ms = MatchSets::compute(&changed_net, &mut bdd);
        let diffs = semantic_diff(&mut bdd, &r.net, &old_ms, &changed_net, &new_ms);
        assert_eq!(diffs.len(), 1, "{label}: exactly one device changes");
        let d = &diffs[0];
        assert_eq!(d.device, r.spines[0]);

        // Run the paper-final suite against the changed state (ignore
        // pass/fail; we only need the coverage trace here).
        let mut ctx = TestContext::new(&changed_net, &new_ms, &info);
        default_route_check(&mut bdd, &mut ctx, |_| true);
        testsuite::internal_route_check(&mut bdd, &mut ctx);
        testsuite::connected_route_check(&mut bdd, &mut ctx);
        let tracker: Tracker = std::mem::take(&mut ctx.tracker);
        let trace = tracker.into_trace();

        let covered_at = trace.packets.at_device(&mut bdd, d.device);
        let tested = bdd.and(covered_at, d.changed);
        let frac = bdd.probability(tested) / bdd.probability(d.changed);
        if expect_tested {
            assert!(
                frac > 0.99,
                "{label}: changed space should be tested, got {frac}"
            );
        } else {
            assert!(
                frac < 0.01,
                "{label}: changed space should be untested, got {frac}"
            );
        }
    }
}

/// The drift digest distinguishes a benign re-run from a behaviour
/// change at integration scale.
#[test]
fn drift_digest_flags_state_changes_only() {
    use dataplane::paths::edge_starts;
    use yardstick::pathcov::{path_coverage, PathUniverseDigest};

    let ft = fattree(FatTreeParams::paper(4));
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let trace = CoverageTrace::new();

    let digest = |net: &netmodel::Network, ms: &MatchSets, bdd: &mut Bdd| {
        let a = Analyzer::new(net, ms, &trace, bdd);
        let fwd = Forwarder::new(net, ms);
        let starts = edge_starts(bdd, &fwd);
        let pc = path_coverage(bdd, &a, &starts, &Default::default());
        PathUniverseDigest::from(pc.stats)
    };

    let day1 = digest(&ft.net, &ms, &mut bdd);
    let day2 = digest(&ft.net, &ms, &mut bdd);
    assert!(
        !day2.drifted(&day1, 0.05),
        "identical snapshots must not alarm"
    );

    let mut broken = ft.net.clone();
    topogen::faults::clear_device(&mut broken, ft.cores[0]);
    let broken_ms = MatchSets::compute(&broken, &mut bdd);
    let day3 = digest(&broken, &broken_ms, &mut bdd);
    assert!(day3.drifted(&day1, 0.05), "a dead core must alarm");
}

/// ATU sampling composes with the tracker across test types.
#[test]
fn atu_round_trip_through_tracking() {
    let ft = fattree(FatTreeParams::paper(4));
    let info = NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..NetworkInfo::default()
    };
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    assert!(default_route_check(&mut bdd, &mut ctx, |_| true).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    for (id, rule) in ft.net.rules() {
        let is_default = rule.matches.dst.map(|p| p.is_default()).unwrap_or(false);
        let covered = a.sample_covered_atu(&mut bdd, id);
        let uncovered = a.sample_uncovered_atu(&mut bdd, id);
        if is_default {
            // Inspected: fully covered, no uncovered ATUs remain.
            assert!(covered.is_some());
            assert!(uncovered.is_none());
        } else {
            assert!(covered.is_none());
            assert!(uncovered.is_some());
        }
    }
}
