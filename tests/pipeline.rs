//! Full-pipeline integration test: the §7 case study as an executable
//! specification. Build the regional network, run the original suite,
//! verify the exact testing-gap pattern the paper reports, add the new
//! tests, verify the gaps close the way Figure 6d shows.

use netbdd::Bdd;
use netmodel::rule::RouteClass;
use netmodel::topology::Role;
use netmodel::MatchSets;
use topogen::{regional, RegionalParams};
use yardstick::{Aggregator, Analyzer, Tracker};

use testsuite::{
    agg_can_reach_tor_loopback, connected_route_check, default_route_check, internal_route_check,
    NetworkInfo, TestContext,
};

fn small_params() -> RegionalParams {
    RegionalParams {
        datacenters: 2,
        pods_per_dc: 2,
        tors_per_pod: 2,
        aggs_per_pod: 2,
        spines_per_dc: 2,
        hubs: 2,
        wan_routers: 2,
        wan_prefixes: 16,
        connected: true,
        loopbacks: true,
        host_ports_per_tor: 4,
    }
}

fn info_for(r: &topogen::Regional) -> NetworkInfo {
    bench::regional_info(r)
}

fn run_suite<'a>(
    bdd: &mut Bdd,
    net: &'a netmodel::Network,
    ms: &'a MatchSets,
    info: &'a NetworkInfo,
    with_new_tests: bool,
) -> yardstick::CoverageTrace {
    let mut ctx = TestContext::new(net, ms, info);
    assert!(default_route_check(bdd, &mut ctx, |_| true).passed());
    assert!(agg_can_reach_tor_loopback(bdd, &mut ctx).passed());
    if with_new_tests {
        assert!(internal_route_check(bdd, &mut ctx).passed());
        assert!(connected_route_check(bdd, &mut ctx).passed());
    }
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    tracker.into_trace()
}

#[test]
fn case_study_gap_pattern_and_improvement() {
    let r = regional(small_params());
    let info = info_for(&r);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);

    // ---- original suite ----------------------------------------------------
    let trace0 = run_suite(&mut bdd, &r.net, &ms, &info, false);
    let a0 = Analyzer::new(&r.net, &ms, &trace0, &mut bdd);

    // Fig 6a observations:
    // (1) fractional device coverage is (near-)perfect for all roles;
    for role in [Role::Tor, Role::Aggregation, Role::Spine, Role::RegionalHub] {
        let m = a0.role_metrics(&mut bdd, role);
        assert_eq!(m.device_fractional, Some(1.0), "{role:?}");
    }
    // (2) interface coverage is high on aggs (the loopback test), low
    //     elsewhere (only default-route uplinks);
    let agg_if = a0
        .role_metrics(&mut bdd, Role::Aggregation)
        .iface_fractional
        .unwrap();
    let tor_if = a0
        .role_metrics(&mut bdd, Role::Tor)
        .iface_fractional
        .unwrap();
    assert!(agg_if > 0.9, "agg ifaces {agg_if}");
    assert!(tor_if < 0.5, "tor ifaces {tor_if}");
    // (3) fractional rule coverage is very low while weighted is high
    //     (the default route dominates the address space).
    let rule_f = a0
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    let rule_w = a0
        .aggregate_rules(&mut bdd, Aggregator::Weighted, |_, _| true)
        .unwrap();
    assert!(rule_f < 0.25, "fractional {rule_f}");
    assert!(rule_w > 0.95, "weighted {rule_w}");

    // The three §7.2 gap classes are fully untested.
    for class in [
        RouteClass::HostSubnet,
        RouteClass::Connected,
        RouteClass::Wan,
    ] {
        let cov = a0
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, rl| rl.class == class)
            .unwrap();
        assert_eq!(
            cov, 0.0,
            "{class:?} should be untested by the original suite"
        );
    }

    // ---- final suite ---------------------------------------------------------
    let trace1 = run_suite(&mut bdd, &r.net, &ms, &info, true);
    let a1 = Analyzer::new(&r.net, &ms, &trace1, &mut bdd);

    // Internal and connected gaps close. HostSubnet stays a little
    // lower: the ToR-local per-port slice rules are exactly the
    // host-facing gap the paper says remains open after the new tests.
    for (class, threshold) in [
        (RouteClass::HostSubnet, 0.8),
        (RouteClass::Connected, 0.9),
        (RouteClass::Loopback, 0.9),
    ] {
        let cov = a1
            .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, rl| rl.class == class)
            .unwrap();
        assert!(cov > threshold, "{class:?} still mostly untested: {cov}");
    }
    // Wide-area routes remain untested (no specification yet — §7.3).
    let wan = a1
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, rl| {
            rl.class == RouteClass::Wan
        })
        .unwrap();
    assert_eq!(wan, 0.0);

    // ToR host-facing interfaces remain untested.
    let tor_if_after = a1
        .role_metrics(&mut bdd, Role::Tor)
        .iface_fractional
        .unwrap();
    assert!(tor_if_after < 0.5, "{tor_if_after}");

    // Overall coverage strictly improves, on every metric.
    let before = a0
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    let after = a1
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    assert!(
        after > before * 3.0,
        "rule coverage must improve dramatically"
    );
    let if_before = a0
        .aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    let if_after = a1
        .aggregate_out_ifaces(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    assert!(if_after > if_before, "interface coverage must improve");
}

#[test]
fn coverage_survives_fault_injection_workflows() {
    // The production workflow: state changes, the suite re-runs, coverage
    // is recomputed. A null-routed internal prefix must both fail the
    // test and change the coverage signature.
    let mut r = regional(small_params());
    let info = info_for(&r);
    let (_, victim, _) = r.tors[0];
    let spine = r.spines[0];
    topogen::faults::null_route(&mut r.net, spine, victim);

    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);
    let mut ctx = TestContext::new(&r.net, &ms, &info);
    let report = internal_route_check(&mut bdd, &mut ctx);
    assert!(!report.passed(), "the fault must be detected");
    // Coverage was still recorded for everything the test analysed.
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let a = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
    let cov = a.aggregate_rules(&mut bdd, Aggregator::Fractional, |_, rl| {
        rl.class == RouteClass::HostSubnet
    });
    assert!(cov.unwrap() > 0.5);
}

#[test]
fn report_rows_cover_all_roles_in_the_regional_network() {
    let r = regional(small_params());
    let info = info_for(&r);
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);
    let trace = run_suite(&mut bdd, &r.net, &ms, &info, true);
    let a = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
    let report = yardstick::CoverageReport::by_role(&mut bdd, &a);
    let roles: Vec<Role> = report.rows.iter().map(|row| row.metrics.role).collect();
    assert_eq!(
        roles,
        vec![
            Role::Tor,
            Role::Aggregation,
            Role::Spine,
            Role::RegionalHub,
            Role::Wan
        ]
    );
    // CSV round-trips the same rows.
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), roles.len() + 2);
}
