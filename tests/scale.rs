//! Opt-in large-scale smoke tests (ignored by default; run with
//! `cargo test --release -- --ignored`). They exist so scaling
//! regressions are catchable on demand without making every `cargo
//! test` run minutes long — run them in release, debug-mode BDD work at
//! these sizes is painful.

use netbdd::Bdd;
use netmodel::MatchSets;
use topogen::{fattree, regional, FatTreeParams, RegionalParams};
use yardstick::{Aggregator, Analyzer, Tracker};

use testsuite::{default_route_check, tor_contract, NetworkInfo, TestContext};

/// k=16 fat-tree (320 routers, ~41k rules): full local-suite run plus
/// rule aggregation, end to end.
#[test]
#[ignore = "large: run with --release -- --ignored"]
fn fattree_k16_full_local_suite() {
    let ft = fattree(FatTreeParams::paper(16));
    assert_eq!(ft.net.topology().device_count(), 320);
    let info = NetworkInfo {
        tor_subnets: ft.tors.clone(),
        ..NetworkInfo::default()
    };
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&ft.net, &mut bdd);
    let mut ctx = TestContext::new(&ft.net, &ms, &info);
    assert!(default_route_check(&mut bdd, &mut ctx, |_| true).passed());
    assert!(tor_contract(&mut bdd, &mut ctx).passed());
    let tracker: Tracker = std::mem::take(&mut ctx.tracker);
    let trace = tracker.into_trace();
    let a = Analyzer::new(&ft.net, &ms, &trace, &mut bdd);
    let cov = a
        .aggregate_rules(&mut bdd, Aggregator::Fractional, |_, _| true)
        .unwrap();
    assert!(
        cov > 0.99,
        "local suite covers ~everything on a fat-tree: {cov}"
    );
}

/// A 4× regional network (~140 devices, ~22k rules incl. dual-stack
/// connected routes): generation, match sets, and the per-role report.
#[test]
#[ignore = "large: run with --release -- --ignored"]
fn regional_4x_report() {
    let r = regional(RegionalParams {
        pods_per_dc: 4,
        tors_per_pod: 8,
        aggs_per_pod: 4,
        spines_per_dc: 4,
        ..RegionalParams::default()
    });
    let mut bdd = Bdd::new();
    let ms = MatchSets::compute(&r.net, &mut bdd);
    let trace = yardstick::CoverageTrace::new();
    let a = Analyzer::new(&r.net, &ms, &trace, &mut bdd);
    let report = yardstick::CoverageReport::by_role(&mut bdd, &a);
    assert_eq!(report.rows.len(), 5);
    assert_eq!(report.overall.rule_fractional, Some(0.0));
}
