//! End-to-end tests of the `yardstick` CLI binary: every subcommand runs
//! against a generated network and produces the advertised output.

use std::process::Command;

fn yardstick(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_yardstick"))
        .args(args)
        .output()
        .expect("binary must run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (ok, _, err) = yardstick(&["--help"]);
    assert!(ok);
    assert!(err.contains("USAGE"));
    assert!(err.contains("report"));
}

#[test]
fn unknown_command_fails_with_help() {
    let (ok, _, err) = yardstick(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn report_on_fattree_prints_roles_and_classes() {
    let (ok, out, err) = yardstick(&[
        "report",
        "--topology",
        "fattree",
        "--k",
        "4",
        "--suite",
        "original",
    ]);
    assert!(ok, "stderr: {err}");
    assert!(out.contains("ToR Router"));
    assert!(out.contains("route class"));
    assert!(err.contains("[pass] DefaultRouteCheck"));
}

#[test]
fn gaps_lists_witness_packets() {
    let (ok, out, _) = yardstick(&[
        "gaps",
        "--topology",
        "fattree",
        "--k",
        "4",
        "--suite",
        "s8",
        "--limit",
        "2",
    ]);
    assert!(ok);
    // The §8 suite on a fat-tree leaves nothing... actually Pingmesh +
    // contract + reachability + default check cover everything at k=4,
    // so the report may be empty; the command must still succeed. Use a
    // weaker suite to guarantee gaps:
    let (ok2, out2, _) = yardstick(&[
        "gaps",
        "--topology",
        "fattree",
        "--k",
        "4",
        "--suite",
        "original",
        "--limit",
        "2",
    ]);
    assert!(ok2);
    assert!(out2.contains("untested:"), "gaps output: {out2}");
    assert!(out2.contains("try: packet"));
    let _ = out;
}

#[test]
fn paths_reports_universe_and_coverage() {
    let (ok, out, _) = yardstick(&[
        "paths",
        "--topology",
        "fattree",
        "--k",
        "4",
        "--suite",
        "s8",
        "--path-budget",
        "100000",
    ]);
    assert!(ok);
    assert!(out.contains("paths: "));
    assert!(out.contains("path coverage: fractional"));
}

#[test]
fn trace_walks_to_the_destination() {
    let (ok, out, _) = yardstick(&[
        "trace",
        "--topology",
        "fattree",
        "--k",
        "4",
        "--dst",
        "10.0.3.7",
    ]);
    assert!(ok);
    assert!(out.contains("outcome: Delivered"));
    assert!(out.contains("HostSubnet"));
}

#[test]
fn trace_requires_dst() {
    let (ok, _, err) = yardstick(&["trace", "--topology", "fattree", "--k", "4"]);
    assert!(!ok);
    assert!(err.contains("requires --dst"));
}

#[test]
fn diff_shows_affected_regions() {
    let (ok, out, _) = yardstick(&["diff", "--topology", "fattree", "--k", "4"]);
    assert!(ok);
    assert!(out.contains("demo change: null-route"));
    assert!(out.contains("affected: v4 dst"));
}
